#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "dnswire/message.h"
#include "fault/dns_outage.h"
#include "sim/simulator.h"

namespace adattl::dnswire {

/// Adapts a core::DnsScheduler into an authoritative DNS answer generator:
/// feed it the raw bytes of a query plus the requester's domain id (in a
/// real deployment: derived from the resolver's address or EDNS client
/// subnet), get back the raw bytes of the response — an A or AAAA record
/// whose address is the chosen server and whose TTL is the policy's
/// adaptive TTL. This is the zero-to-deployment bridge: bind a UDP
/// socket, call handle() per datagram, and the paper's algorithms serve
/// real resolvers.
///
/// Error handling follows authoritative-server convention: malformed
/// queries get FORMERR (when the id is recoverable), questions that are
/// neither A/IN nor AAAA/IN get NOTIMP, names we are not authoritative
/// for get NXDOMAIN — and none of those consume a scheduling decision.
class DnsFrontend {
 public:
  /// `site_name`: the one name this site is authoritative for (dotted,
  /// case-insensitive). `server_ipv4`: address of each server, index ==
  /// ServerId, host byte order. `server_ipv6`: optional native IPv6
  /// addresses (same indexing); when empty, AAAA answers carry the
  /// v4-mapped form ::ffff:a.b.c.d of the corresponding IPv4.
  DnsFrontend(core::DnsScheduler& scheduler, std::string site_name,
              std::vector<std::uint32_t> server_ipv4,
              std::vector<Ipv6> server_ipv6 = {});

  /// Answers one query datagram. Always returns a well-formed response
  /// when at least the query header was readable; returns an empty vector
  /// only when not even the id could be recovered (drop the datagram).
  std::vector<std::uint8_t> handle(const std::vector<std::uint8_t>& query,
                                   web::DomainId source_domain);

  /// Wires an outage calendar: while `calendar->unreachable(clock->now())`
  /// the frontend answers SERVFAIL (without consuming a scheduling
  /// decision) — the wire-level face of an authoritative-DNS outage.
  /// Pass nulls to detach; both pointers must be set together.
  void set_outages(const fault::DnsOutageCalendar* calendar, const sim::Simulator* clock);

  std::uint64_t answered() const { return answered_; }
  std::uint64_t refused() const { return errors_; }
  /// Queries answered SERVFAIL because of a scheduled outage.
  std::uint64_t outage_failures() const { return outage_failures_; }

 private:
  core::DnsScheduler& scheduler_;
  std::string site_name_;  // stored lower-cased
  std::vector<std::uint32_t> server_ipv4_;
  std::vector<Ipv6> server_ipv6_;  // always sized like server_ipv4_
  const fault::DnsOutageCalendar* outages_ = nullptr;
  const sim::Simulator* clock_ = nullptr;
  std::uint64_t answered_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t outage_failures_ = 0;
};

}  // namespace adattl::dnswire
