#include "dnswire/daemon.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define ADATTL_DNSD_HAVE_MMSG 1
#else
#include <fcntl.h>
#define ADATTL_DNSD_HAVE_MMSG 0
#endif

#include "core/policy_factory.h"

namespace adattl::dnswire {

namespace {

constexpr std::size_t kMaxDatagram = 2048;  // EDNS0 payloads fit comfortably

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void validate(const DaemonConfig& cfg) {
  if (cfg.shards < 1) throw std::invalid_argument("DaemonConfig: shards must be >= 1");
  if (cfg.batch < 1) throw std::invalid_argument("DaemonConfig: batch must be >= 1");
  if (cfg.port < 0 || cfg.port > 65535) {
    throw std::invalid_argument("DaemonConfig: port must be in [0, 65535]");
  }
  if (cfg.num_domains < 1) throw std::invalid_argument("DaemonConfig: need >= 1 domain");
  if (cfg.server_ipv4.empty()) {
    throw std::invalid_argument("DaemonConfig: no server addresses");
  }
  if (!cfg.capacities.empty() && cfg.capacities.size() != cfg.server_ipv4.size()) {
    throw std::invalid_argument("DaemonConfig: capacities must match server count");
  }
  if (!cfg.server_ipv6.empty() && cfg.server_ipv6.size() != cfg.server_ipv4.size()) {
    throw std::invalid_argument("DaemonConfig: server_ipv6 must match server count");
  }
  // Shard cores are built inside their worker threads, where a throw
  // would terminate; reject a bad policy name up front instead.
  core::validate_policy_name(cfg.policy);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardCore
// ---------------------------------------------------------------------------

ShardCore::ShardCore(const DaemonConfig& cfg, int shard_index)
    : rng_(cfg.seed + static_cast<std::uint64_t>(shard_index)),
      alarms_(static_cast<int>(cfg.server_ipv4.size()), 0.9),
      num_domains_(cfg.num_domains),
      ecs_enabled_(cfg.ecs_enabled) {
  validate(cfg);
  core::SchedulerFactoryConfig fc;
  // Equal capacities unless the operator declared the real ones; the
  // scheduler only ever uses the ratios.
  if (cfg.capacities.empty()) {
    fc.capacities.assign(cfg.server_ipv4.size(), 100.0);
  } else {
    fc.capacities = cfg.capacities;
  }
  fc.initial_weights = sim::ZipfDistribution(cfg.num_domains, 1.0).probabilities();
  fc.class_threshold = 1.0 / cfg.num_domains;
  bundle_ = core::make_scheduler(cfg.policy, fc, alarms_, simulator_, rng_);
  frontend_ = std::make_unique<DnsFrontend>(*bundle_.scheduler, cfg.site_name,
                                            cfg.server_ipv4, cfg.server_ipv6);
  scratch_.reserve(kMaxDatagram);
}

const std::vector<std::uint8_t>& ShardCore::handle(const std::uint8_t* data,
                                                   std::size_t len,
                                                   std::uint32_t src_ip_host,
                                                   std::uint16_t src_port) {
  DomainKeySource source = DomainKeySource::kSourceHash;
  const web::DomainId domain = derive_domain_key(data, len, src_ip_host, src_port,
                                                 num_domains_, ecs_enabled_, &source);
  switch (source) {
    case DomainKeySource::kEcs: ++ecs_keys_; break;
    case DomainKeySource::kSourceHash: ++hash_keys_; break;
    case DomainKeySource::kMalformedFallback:
      ++ecs_malformed_;
      ++hash_keys_;
      break;
  }
  scratch_.assign(data, data + len);
  reply_ = frontend_->handle(scratch_, domain);
  return reply_;
}

// ---------------------------------------------------------------------------
// UdpDaemon plumbing
// ---------------------------------------------------------------------------

/// Writer: the shard thread (relaxed stores). Readers: anyone. Padded to a
/// cache line so shard counters never false-share.
struct alignas(64) ShardStatsAtomics {
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> refused{0};
  std::atomic<std::uint64_t> dropped_undecodable{0};
  std::atomic<std::uint64_t> dropped_kernel{0};
  std::atomic<std::uint64_t> send_errors{0};
  std::atomic<std::uint64_t> ecs_keys{0};
  std::atomic<std::uint64_t> hash_keys{0};
  std::atomic<std::uint64_t> ecs_malformed{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> decisions{0};
};

struct UdpDaemon::Shard {
  int index = 0;
  int fd = -1;
  int wake_read_fd = -1;   ///< eventfd on Linux; pipe read end elsewhere
  int wake_write_fd = -1;  ///< == wake_read_fd for eventfd
  std::unique_ptr<ShardCore> core;
  ShardStatsAtomics stats;
  std::thread thread;
  // SO_RXQ_OVFL is a cumulative per-socket counter; deltas are drops.
  std::uint32_t last_rxq_ovfl = 0;
  bool rxq_ovfl_seen = false;
};

struct UdpDaemon::ShardInstruments {
  obs::Counter received, answered, refused, dropped_kernel, send_errors, ecs_keys,
      ecs_malformed, decisions;
  ShardStatsSnapshot published;
};

namespace {

int open_shard_socket(const DaemonConfig& cfg, int bind_port) {
#if defined(__linux__)
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
#else
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd >= 0) ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
#endif
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    ::close(fd);
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  // Explicit buffer sizing: the legacy daemon inherited the (small) kernel
  // defaults and shed bursts silently. Best-effort — the kernel clamps to
  // net.core.rmem_max — but always set, never assumed.
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &cfg.rcvbuf_bytes,
                     sizeof(cfg.rcvbuf_bytes));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg.sndbuf_bytes,
                     sizeof(cfg.sndbuf_bytes));
#if defined(SO_RXQ_OVFL)
  // Ask the kernel to report receive-queue overflow drops as ancillary
  // data, so bursts that outrun us are counted instead of vanishing.
  (void)::setsockopt(fd, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one));
#endif
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(bind_port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind");
  }
  return fd;
}

int bound_port_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

/// Extracts the cumulative SO_RXQ_OVFL counter from a msghdr's ancillary
/// data; returns false when the kernel attached none.
bool rxq_ovfl_of(msghdr& msg, std::uint32_t* value) {
#if defined(SO_RXQ_OVFL)
  for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr; c = CMSG_NXTHDR(&msg, c)) {
    if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SO_RXQ_OVFL &&
        c->cmsg_len >= CMSG_LEN(sizeof(std::uint32_t))) {
      std::memcpy(value, CMSG_DATA(c), sizeof(std::uint32_t));
      return true;
    }
  }
#else
  (void)msg;
  (void)value;
#endif
  return false;
}

/// One received datagram being shepherded through a shard: where it came
/// from, its bytes, and (after processing) the reply to send back.
struct Slot {
  sockaddr_in peer{};
  std::size_t rx_len = 0;
  std::vector<std::uint8_t> rx;
  std::vector<std::uint8_t> tx;
  alignas(cmsghdr) char cmsg[64];
};

}  // namespace

// ---------------------------------------------------------------------------
// UdpDaemon
// ---------------------------------------------------------------------------

UdpDaemon::UdpDaemon(DaemonConfig cfg) : cfg_(std::move(cfg)) {
  validate(cfg_);
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  int port = cfg_.port;
  for (int i = 0; i < cfg_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->fd = open_shard_socket(cfg_, port);
    if (i == 0) {
      bound_port_ = bound_port_of(shard->fd);
      port = bound_port_;  // shards 1..N-1 join shard 0's REUSEPORT group
    }
#if defined(__linux__)
    shard->wake_read_fd = ::eventfd(0, EFD_NONBLOCK);
    if (shard->wake_read_fd < 0) throw_errno("eventfd");
    shard->wake_write_fd = shard->wake_read_fd;
#else
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) throw_errno("pipe");
    ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
    shard->wake_read_fd = pipe_fds[0];
    shard->wake_write_fd = pipe_fds[1];
#endif
    shards_.push_back(std::move(shard));
  }
}

UdpDaemon::~UdpDaemon() {
  stop();
  for (auto& s : shards_) {
    if (s->fd >= 0) ::close(s->fd);
    if (s->wake_read_fd >= 0) ::close(s->wake_read_fd);
    if (s->wake_write_fd >= 0 && s->wake_write_fd != s->wake_read_fd) {
      ::close(s->wake_write_fd);
    }
  }
}

void UdpDaemon::start() {
  if (started_) throw std::logic_error("UdpDaemon::start called twice");
  started_ = true;
  live_shards_.store(cfg_.shards, std::memory_order_relaxed);
  for (auto& s : shards_) {
    s->thread = std::thread([this, shard = s.get()] {
      shard_loop(*shard);
      live_shards_.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
}

void UdpDaemon::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  for (auto& s : shards_) {
    if (s->wake_write_fd >= 0) {
      // write() is async-signal-safe; the value is irrelevant, the wakeup is.
      [[maybe_unused]] ssize_t n = ::write(s->wake_write_fd, &one, sizeof(one));
    }
  }
}

void UdpDaemon::stop() {
  if (!started_ || joined_) return;
  request_stop();
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
  joined_ = true;
}

bool UdpDaemon::finished() const {
  return started_ && live_shards_.load(std::memory_order_acquire) == 0;
}

bool UdpDaemon::using_batched_io() const {
  return ADATTL_DNSD_HAVE_MMSG != 0 && cfg_.batch > 1;
}

ShardStatsSnapshot UdpDaemon::shard_stats(int shard) const {
  const ShardStatsAtomics& a = shards_.at(static_cast<std::size_t>(shard))->stats;
  ShardStatsSnapshot s;
  s.received = a.received.load(std::memory_order_relaxed);
  s.answered = a.answered.load(std::memory_order_relaxed);
  s.refused = a.refused.load(std::memory_order_relaxed);
  s.dropped_undecodable = a.dropped_undecodable.load(std::memory_order_relaxed);
  s.dropped_kernel = a.dropped_kernel.load(std::memory_order_relaxed);
  s.send_errors = a.send_errors.load(std::memory_order_relaxed);
  s.ecs_keys = a.ecs_keys.load(std::memory_order_relaxed);
  s.hash_keys = a.hash_keys.load(std::memory_order_relaxed);
  s.ecs_malformed = a.ecs_malformed.load(std::memory_order_relaxed);
  s.batches = a.batches.load(std::memory_order_relaxed);
  s.decisions = a.decisions.load(std::memory_order_relaxed);
  return s;
}

ShardStatsSnapshot UdpDaemon::totals() const {
  ShardStatsSnapshot t;
  for (int i = 0; i < shards(); ++i) {
    const ShardStatsSnapshot s = shard_stats(i);
    t.received += s.received;
    t.answered += s.answered;
    t.refused += s.refused;
    t.dropped_undecodable += s.dropped_undecodable;
    t.dropped_kernel += s.dropped_kernel;
    t.send_errors += s.send_errors;
    t.ecs_keys += s.ecs_keys;
    t.hash_keys += s.hash_keys;
    t.ecs_malformed += s.ecs_malformed;
    t.batches += s.batches;
    t.decisions += s.decisions;
  }
  return t;
}

void UdpDaemon::bind_observability(obs::MetricsRegistry* registry) {
  registry_ = registry;
  instruments_.clear();
  if (registry == nullptr) return;
  instruments_.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string p = "dnsd.shard" + std::to_string(i) + ".";
    ShardInstruments& in = instruments_[i];
    in.received = registry->counter(p + "received");
    in.answered = registry->counter(p + "answered");
    in.refused = registry->counter(p + "refused");
    in.dropped_kernel = registry->counter(p + "dropped_kernel");
    in.send_errors = registry->counter(p + "send_errors");
    in.ecs_keys = registry->counter(p + "ecs_keys");
    in.ecs_malformed = registry->counter(p + "ecs_malformed");
    in.decisions = registry->counter(p + "decisions");
  }
}

void UdpDaemon::publish_metrics() {
  if (registry_ == nullptr) return;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardStatsSnapshot s = shard_stats(static_cast<int>(i));
    ShardInstruments& in = instruments_[i];
    // Counters are monotonic: publish the delta since the last publish.
    in.received.inc(s.received - in.published.received);
    in.answered.inc(s.answered - in.published.answered);
    in.refused.inc(s.refused - in.published.refused);
    in.dropped_kernel.inc(s.dropped_kernel - in.published.dropped_kernel);
    in.send_errors.inc(s.send_errors - in.published.send_errors);
    in.ecs_keys.inc(s.ecs_keys - in.published.ecs_keys);
    in.ecs_malformed.inc(s.ecs_malformed - in.published.ecs_malformed);
    in.decisions.inc(s.decisions - in.published.decisions);
    in.published = s;
  }
}

void UdpDaemon::note_progress() {
  if (cfg_.max_queries == 0) return;
  if (total_handled_.load(std::memory_order_relaxed) >= cfg_.max_queries) {
    request_stop();
  }
}

// ---------------------------------------------------------------------------
// The shard I/O loop
// ---------------------------------------------------------------------------

void UdpDaemon::shard_loop(Shard& shard) {
  // The core is built on the thread that runs it so every cache line it
  // allocates is local to this shard from the start. (It is no longer a
  // correctness requirement: unbound obs instruments are pure no-ops, so
  // construction thread cannot create cross-shard sharing.)
  shard.core = std::make_unique<ShardCore>(cfg_, shard.index);
  const int batch = cfg_.batch;
  std::vector<Slot> slots(static_cast<std::size_t>(batch));
  for (Slot& s : slots) s.rx.resize(kMaxDatagram);

  auto& st = shard.stats;

  const auto account_kernel_drops = [&](std::uint32_t cumulative) {
    if (shard.rxq_ovfl_seen) {
      // uint32 wrap-safe delta of a cumulative counter.
      const std::uint32_t delta = cumulative - shard.last_rxq_ovfl;
      if (delta != 0) st.dropped_kernel.fetch_add(delta, std::memory_order_relaxed);
    } else {
      // First observation: the counter counts since socket creation, and
      // our socket received nothing before the loop started, so the whole
      // value is drops on our watch.
      shard.rxq_ovfl_seen = true;
      if (cumulative != 0) {
        st.dropped_kernel.fetch_add(cumulative, std::memory_order_relaxed);
      }
    }
    shard.last_rxq_ovfl = cumulative;
  };

  /// Runs the scheduler over slots [0, n) and fills each tx.
  const auto process = [&](int n) {
    const DnsFrontend& f = shard.core->frontend();
    const std::uint64_t handled0 = f.answered() + f.refused();
    std::uint64_t undecodable = 0;
    for (int i = 0; i < n; ++i) {
      Slot& slot = slots[static_cast<std::size_t>(i)];
      slot.tx = shard.core->handle(slot.rx.data(), slot.rx_len,
                                   ntohl(slot.peer.sin_addr.s_addr),
                                   ntohs(slot.peer.sin_port));
      if (slot.tx.empty()) ++undecodable;
    }
    st.received.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    st.batches.fetch_add(1, std::memory_order_relaxed);
    if (undecodable != 0) {
      st.dropped_undecodable.fetch_add(undecodable, std::memory_order_relaxed);
    }
    st.answered.store(f.answered(), std::memory_order_relaxed);
    st.refused.store(f.refused(), std::memory_order_relaxed);
    st.ecs_keys.store(shard.core->ecs_keys(), std::memory_order_relaxed);
    st.hash_keys.store(shard.core->hash_keys(), std::memory_order_relaxed);
    st.ecs_malformed.store(shard.core->ecs_malformed(), std::memory_order_relaxed);
    st.decisions.store(shard.core->scheduler().decisions(), std::memory_order_relaxed);
    total_handled_.fetch_add(f.answered() + f.refused() - handled0,
                             std::memory_order_relaxed);
  };

  const auto send_one = [&](Slot& slot) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const ssize_t sent =
          ::sendto(shard.fd, slot.tx.data(), slot.tx.size(), 0,
                   reinterpret_cast<const sockaddr*>(&slot.peer), sizeof(slot.peer));
      if (sent >= 0) return;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{shard.fd, POLLOUT, 0};
        (void)::poll(&p, 1, 10);
        continue;
      }
      break;
    }
    st.send_errors.fetch_add(1, std::memory_order_relaxed);
  };

#if ADATTL_DNSD_HAVE_MMSG
  // Persistent recvmmsg scaffolding over the slots.
  std::vector<mmsghdr> rxvec(static_cast<std::size_t>(batch));
  std::vector<iovec> rxio(static_cast<std::size_t>(batch));
  const auto arm_rx = [&] {
    for (int i = 0; i < batch; ++i) {
      Slot& slot = slots[static_cast<std::size_t>(i)];
      rxio[i] = {slot.rx.data(), slot.rx.size()};
      msghdr& m = rxvec[i].msg_hdr;
      std::memset(&m, 0, sizeof(m));
      m.msg_name = &slot.peer;
      m.msg_namelen = sizeof(slot.peer);
      m.msg_iov = &rxio[static_cast<std::size_t>(i)];
      m.msg_iovlen = 1;
      m.msg_control = slot.cmsg;
      m.msg_controllen = sizeof(slot.cmsg);
      rxvec[i].msg_len = 0;
    }
  };

  const auto send_batch = [&](int n) {
    // Gather the non-empty replies into one sendmmsg vector.
    std::vector<mmsghdr> txvec;
    std::vector<iovec> txio;
    txvec.reserve(static_cast<std::size_t>(n));
    txio.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Slot& slot = slots[static_cast<std::size_t>(i)];
      if (slot.tx.empty()) continue;
      txio.push_back({slot.tx.data(), slot.tx.size()});
      mmsghdr m{};
      m.msg_hdr.msg_name = &slot.peer;
      m.msg_hdr.msg_namelen = sizeof(slot.peer);
      txvec.push_back(m);
    }
    for (std::size_t i = 0; i < txvec.size(); ++i) {
      txvec[i].msg_hdr.msg_iov = &txio[i];
      txvec[i].msg_hdr.msg_iovlen = 1;
    }
    std::size_t off = 0;
    int stalls = 0;
    while (off < txvec.size()) {
      const int sent = ::sendmmsg(shard.fd, txvec.data() + off,
                                  static_cast<unsigned>(txvec.size() - off), 0);
      if (sent > 0) {
        off += static_cast<std::size_t>(sent);
        stalls = 0;
        continue;
      }
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && stalls < 3) {
        ++stalls;
        pollfd p{shard.fd, POLLOUT, 0};
        (void)::poll(&p, 1, 10);
        continue;
      }
      st.send_errors.fetch_add(txvec.size() - off, std::memory_order_relaxed);
      break;
    }
  };

  const bool batched = batch > 1;
  const int epfd = ::epoll_create1(0);
  if (epfd < 0) throw_errno("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = shard.fd;
  if (::epoll_ctl(epfd, EPOLL_CTL_ADD, shard.fd, &ev) != 0) throw_errno("epoll_ctl");
  ev.data.fd = shard.wake_read_fd;
  if (::epoll_ctl(epfd, EPOLL_CTL_ADD, shard.wake_read_fd, &ev) != 0) {
    throw_errno("epoll_ctl(wake)");
  }

  while (!stop_.load(std::memory_order_acquire)) {
    epoll_event events[2];
    const int ready = ::epoll_wait(epfd, events, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Drain the socket completely before sleeping again (level-triggered,
    // so anything left re-arms the loop anyway — this just saves wakeups).
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) break;
      int n = 0;
      if (batched) {
        arm_rx();
        n = ::recvmmsg(shard.fd, rxvec.data(), static_cast<unsigned>(batch),
                       MSG_DONTWAIT, nullptr);
        if (n > 0) {
          std::uint32_t ovfl = 0;
          for (int i = 0; i < n; ++i) {
            slots[static_cast<std::size_t>(i)].rx_len = rxvec[i].msg_len;
            if (rxq_ovfl_of(rxvec[i].msg_hdr, &ovfl) && i == n - 1) {
              account_kernel_drops(ovfl);
            }
          }
        }
      } else {
        Slot& slot = slots[0];
        iovec io{slot.rx.data(), slot.rx.size()};
        msghdr m{};
        m.msg_name = &slot.peer;
        m.msg_namelen = sizeof(slot.peer);
        m.msg_iov = &io;
        m.msg_iovlen = 1;
        m.msg_control = slot.cmsg;
        m.msg_controllen = sizeof(slot.cmsg);
        const ssize_t r = ::recvmsg(shard.fd, &m, MSG_DONTWAIT);
        if (r >= 0) {
          slot.rx_len = static_cast<std::size_t>(r);
          std::uint32_t ovfl = 0;
          if (rxq_ovfl_of(m, &ovfl)) account_kernel_drops(ovfl);
          n = 1;
        } else {
          n = -1;
        }
      }
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;  // EAGAIN: drained
      }
      process(n);
      if (batched) {
        send_batch(n);
      } else {
        if (!slots[0].tx.empty()) send_one(slots[0]);
      }
      note_progress();
    }
  }
  ::close(epfd);
#else
  // Portable fallback: poll() over the socket + wake pipe, one datagram
  // per recvfrom. No mmsg, no kernel drop counter — but the same shard
  // model, stats and drain semantics.
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{shard.fd, POLLIN, 0}, {shard.wake_read_fd, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) break;
      Slot& slot = slots[0];
      socklen_t peer_len = sizeof(slot.peer);
      const ssize_t r = ::recvfrom(shard.fd, slot.rx.data(), slot.rx.size(), 0,
                                   reinterpret_cast<sockaddr*>(&slot.peer), &peer_len);
      if (r < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: drained
      }
      slot.rx_len = static_cast<std::size_t>(r);
      process(1);
      if (!slot.tx.empty()) send_one(slot);
      note_progress();
    }
  }
#endif
}

}  // namespace adattl::dnswire
