#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_factory.h"
#include "dnswire/ecs.h"
#include "dnswire/frontend.h"
#include "obs/metrics.h"

namespace adattl::dnswire {

/// Everything needed to stand up the sharded authoritative daemon.
struct DaemonConfig {
  std::string site_name = "www.site.org";
  std::vector<std::uint32_t> server_ipv4;  ///< host byte order, index == ServerId
  /// Optional native IPv6 addresses (wire order, index == ServerId) for
  /// AAAA answers. Empty = answer AAAA with v4-mapped ::ffff:a.b.c.d.
  std::vector<Ipv6> server_ipv6;
  /// Absolute server capacities C_i, index == ServerId. Empty = all equal
  /// (the scheduler only uses ratios). Size must match server_ipv4 if set.
  std::vector<double> capacities;
  std::string policy = "DRR2-TTL/S_K";
  int num_domains = 20;
  std::uint64_t seed = 1;
  int port = 5353;   ///< 0 = ephemeral; UdpDaemon::port() reports the bound one
  int shards = 1;    ///< worker shards, each with its own SO_REUSEPORT socket
  int batch = 32;    ///< recvmmsg/sendmmsg batch; 1 = plain recvmsg/sendto path
  bool ecs_enabled = true;  ///< derive domain keys from EDNS0 Client-Subnet
  int rcvbuf_bytes = 1 << 21;
  int sndbuf_bytes = 1 << 21;
  std::uint64_t max_queries = 0;  ///< stop after N answered+refused total (0 = run on)
};

/// Point-in-time copy of one shard's counters (relaxed-atomic reads; the
/// shard thread is the only writer).
struct ShardStatsSnapshot {
  std::uint64_t received = 0;        ///< datagrams read off the socket
  std::uint64_t answered = 0;        ///< positive answers sent
  std::uint64_t refused = 0;         ///< error-rcode answers sent
  std::uint64_t dropped_undecodable = 0;  ///< id unrecoverable: no reply at all
  std::uint64_t dropped_kernel = 0;  ///< SO_RXQ_OVFL: datagrams the kernel shed
  std::uint64_t send_errors = 0;     ///< replies lost to sendto/sendmmsg failures
  std::uint64_t ecs_keys = 0;        ///< domain keys derived from a Client-Subnet
  std::uint64_t hash_keys = 0;       ///< keys from the legacy source-address hash
  std::uint64_t ecs_malformed = 0;   ///< ECS present but unusable: hash fallback
  std::uint64_t batches = 0;         ///< recv syscalls that returned >= 1 datagram
  std::uint64_t decisions = 0;       ///< scheduling decisions this shard consumed
};

/// The socket-free packet-processing core of one shard: its own scheduler
/// bundle (selection + TTL state), its own DnsFrontend, its own RNG — zero
/// shared mutable state between shards, so the hot decision path needs no
/// locks at all. A 1-shard daemon therefore runs bit-identically to the
/// serial core::DnsScheduler (pinned by tests/test_dnsd_golden.cpp).
class ShardCore {
 public:
  /// `shard_index` decorrelates probabilistic policies across shards
  /// (stream seed = cfg.seed + shard_index, the parallel-executor rule).
  ShardCore(const DaemonConfig& cfg, int shard_index);

  /// Processes one query datagram: derives the domain key (ECS when
  /// enabled and present, source hash otherwise), feeds the frontend, and
  /// returns the reply bytes (empty = drop). The returned reference stays
  /// valid until the next handle() call; buffers are reused so the steady
  /// state settles into zero allocations per packet.
  const std::vector<std::uint8_t>& handle(const std::uint8_t* data, std::size_t len,
                                          std::uint32_t src_ip_host,
                                          std::uint16_t src_port);

  core::DnsScheduler& scheduler() { return *bundle_.scheduler; }
  const core::DnsScheduler& scheduler() const { return *bundle_.scheduler; }
  DnsFrontend& frontend() { return *frontend_; }
  const DnsFrontend& frontend() const { return *frontend_; }

  std::uint64_t ecs_keys() const { return ecs_keys_; }
  std::uint64_t hash_keys() const { return hash_keys_; }
  std::uint64_t ecs_malformed() const { return ecs_malformed_; }

 private:
  sim::Simulator simulator_;
  sim::RngStream rng_;
  core::AlarmRegistry alarms_;
  core::SchedulerBundle bundle_;
  std::unique_ptr<DnsFrontend> frontend_;
  std::vector<std::uint8_t> scratch_;  ///< query copy handed to the frontend
  std::vector<std::uint8_t> reply_;
  int num_domains_;
  bool ecs_enabled_;
  std::uint64_t ecs_keys_ = 0;
  std::uint64_t hash_keys_ = 0;
  std::uint64_t ecs_malformed_ = 0;
};

/// Multi-core authoritative UDP DNS server: N worker shards, each with its
/// own SO_REUSEPORT socket (the kernel spreads resolvers across shards by
/// flow hash), its own epoll loop, batched recvmmsg/sendmmsg I/O (plain
/// recvmsg/sendto when batch == 1 or the platform lacks the mmsg calls),
/// explicit SO_RCVBUF/SO_SNDBUF sizing and SO_RXQ_OVFL drop accounting.
///
/// Lifecycle: the constructor binds every socket (throws on failure),
/// start() launches the shard threads, stop() requests a graceful drain
/// (each shard finishes the batch in hand, answers it, then exits) and
/// joins. Per-shard stats are relaxed atomics, safe to snapshot from any
/// thread while shards run.
class UdpDaemon {
 public:
  explicit UdpDaemon(DaemonConfig cfg);
  ~UdpDaemon();

  UdpDaemon(const UdpDaemon&) = delete;
  UdpDaemon& operator=(const UdpDaemon&) = delete;

  void start();
  void stop();

  /// Async-signal-safe stop request: sets the stop flag and wakes every
  /// shard. Safe to call from a signal handler; follow with stop() from a
  /// normal context to join.
  void request_stop() noexcept;

  /// True once every shard has exited its loop (max_queries reached or a
  /// stop was requested).
  bool finished() const;

  int port() const { return bound_port_; }
  int shards() const { return static_cast<int>(shards_.size()); }
  bool using_batched_io() const;

  ShardStatsSnapshot shard_stats(int shard) const;
  ShardStatsSnapshot totals() const;

  /// Registers per-shard + aggregate instruments ("dnsd.shard0.answered",
  /// "dnsd.answered", ...) on `registry`. publish_metrics() copies the
  /// current shard counters into the registry cells — call it from one
  /// thread only (the registry is not thread-safe); shards never touch it.
  void bind_observability(obs::MetricsRegistry* registry);
  void publish_metrics();

 private:
  struct Shard;

  void shard_loop(Shard& shard);
  void note_progress();  ///< max_queries bookkeeping, called per batch

  DaemonConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  std::atomic<int> live_shards_{0};
  std::atomic<std::uint64_t> total_handled_{0};
  int bound_port_ = 0;
  bool started_ = false;
  bool joined_ = false;

  // Observability handles (bound once, written by publish_metrics only).
  struct ShardInstruments;
  std::vector<ShardInstruments> instruments_;
  obs::MetricsRegistry* registry_ = nullptr;
};

}  // namespace adattl::dnswire
