#include "dnswire/message.h"

#include <cctype>

namespace adattl::dnswire {
namespace {

void put16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v & 0xffff));
}

bool get16(const std::uint8_t* data, std::size_t size, std::size_t* pos, std::uint16_t* v) {
  if (*pos + 2 > size) return false;
  *v = static_cast<std::uint16_t>((data[*pos] << 8) | data[*pos + 1]);
  *pos += 2;
  return true;
}

bool get32(const std::uint8_t* data, std::size_t size, std::size_t* pos, std::uint32_t* v) {
  std::uint16_t hi = 0, lo = 0;
  if (!get16(data, size, pos, &hi) || !get16(data, size, pos, &lo)) return false;
  *v = (static_cast<std::uint32_t>(hi) << 16) | lo;
  return true;
}

void encode_header(std::vector<std::uint8_t>* out, const Header& h) {
  put16(out, h.id);
  std::uint16_t flags = 0;
  flags |= static_cast<std::uint16_t>(h.qr) << 15;
  flags |= static_cast<std::uint16_t>(h.opcode & 0x0f) << 11;
  flags |= static_cast<std::uint16_t>(h.aa) << 10;
  flags |= static_cast<std::uint16_t>(h.tc) << 9;
  flags |= static_cast<std::uint16_t>(h.rd) << 8;
  flags |= static_cast<std::uint16_t>(h.ra) << 7;
  flags |= static_cast<std::uint16_t>(h.rcode & 0x0f);
  put16(out, flags);
  put16(out, h.qdcount);
  put16(out, h.ancount);
  put16(out, h.nscount);
  put16(out, h.arcount);
}

bool decode_header(const std::uint8_t* data, std::size_t size, std::size_t* pos, Header* h) {
  std::uint16_t flags = 0;
  if (!get16(data, size, pos, &h->id) || !get16(data, size, pos, &flags) ||
      !get16(data, size, pos, &h->qdcount) || !get16(data, size, pos, &h->ancount) ||
      !get16(data, size, pos, &h->nscount) || !get16(data, size, pos, &h->arcount)) {
    return false;
  }
  h->qr = (flags >> 15) & 1;
  h->opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0f);
  h->aa = (flags >> 10) & 1;
  h->tc = (flags >> 9) & 1;
  h->rd = (flags >> 8) & 1;
  h->ra = (flags >> 7) & 1;
  h->rcode = static_cast<std::uint8_t>(flags & 0x0f);
  return true;
}

}  // namespace

bool encode_name(const std::string& dotted, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> bytes;
  std::size_t start = 0;
  while (start <= dotted.size()) {
    const std::size_t dot = dotted.find('.', start);
    const std::size_t end = (dot == std::string::npos) ? dotted.size() : dot;
    const std::size_t len = end - start;
    if (len == 0 || len > 63) return false;
    bytes.push_back(static_cast<std::uint8_t>(len));
    for (std::size_t i = start; i < end; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(dotted[i]));
    }
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  bytes.push_back(0);  // root label
  if (bytes.size() > 255) return false;
  out->insert(out->end(), bytes.begin(), bytes.end());
  return true;
}

bool decode_name(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                 std::string* out) {
  out->clear();
  std::size_t cursor = *pos;
  bool jumped = false;
  int hops = 0;
  std::size_t end_after_name = 0;  // set at the first pointer

  for (;;) {
    if (cursor >= size) return false;
    const std::uint8_t len = data[cursor];
    if ((len & 0xc0) == 0xc0) {
      // Compression pointer.
      if (cursor + 2 > size) return false;
      if (++hops > 32) return false;  // pointer loop guard
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | data[cursor + 1];
      if (!jumped) {
        end_after_name = cursor + 2;
        jumped = true;
      }
      if (target >= size) return false;
      cursor = target;
      continue;
    }
    if (len > 63) return false;
    if (len == 0) {
      *pos = jumped ? end_after_name : cursor + 1;
      return true;
    }
    if (cursor + 1 + len > size) return false;
    if (!out->empty()) out->push_back('.');
    if (out->size() + len > 255) return false;
    for (std::size_t i = 0; i < len; ++i) {
      out->push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(data[cursor + 1 + i]))));
    }
    cursor += 1 + static_cast<std::size_t>(len);
  }
}

std::vector<std::uint8_t> encode_query(std::uint16_t id, const std::string& qname,
                                       std::uint16_t qtype, std::uint16_t qclass,
                                       bool recursion_desired) {
  Header h;
  h.id = id;
  h.rd = recursion_desired;
  h.qdcount = 1;
  std::vector<std::uint8_t> out;
  encode_header(&out, h);
  if (!encode_name(qname, &out)) return {};
  put16(&out, qtype);
  put16(&out, qclass);
  return out;
}

bool decode_query(const std::vector<std::uint8_t>& wire, Header* header, Question* question) {
  std::size_t pos = 0;
  if (!decode_header(wire.data(), wire.size(), &pos, header)) return false;
  if (header->qdcount < 1) return false;
  if (!decode_name(wire.data(), wire.size(), &pos, &question->qname)) return false;
  if (!get16(wire.data(), wire.size(), &pos, &question->qtype)) return false;
  if (!get16(wire.data(), wire.size(), &pos, &question->qclass)) return false;
  return true;
}

namespace {

/// Shared body of encode_a_response / encode_aaaa_response: one address
/// record of `rr_type` whose rdata is `rdata[0..rdata_len)`.
std::vector<std::uint8_t> encode_address_response(const Header& query_header,
                                                  const Question& question,
                                                  std::uint16_t rr_type,
                                                  const std::uint8_t* rdata,
                                                  std::uint16_t rdata_len,
                                                  std::uint32_t ttl_sec, std::uint8_t rcode) {
  Header h;
  h.id = query_header.id;
  h.qr = true;
  h.aa = true;
  h.rd = query_header.rd;
  h.rcode = rcode;

  // Echo the question when it survives re-encoding. decode_name accepts
  // names encode_name must reject — the root name (empty), labels
  // containing '.' bytes, 255-character dotted forms whose wire form
  // exceeds 255 bytes — so an error response to such a question omits the
  // echo (qdcount 0) instead of failing: the resolver still gets its
  // rcode and id. Found by the proptest dnswire fuzzer (corpus:
  // root-name-query, label-with-dot-byte, overlong-echo-name).
  std::vector<std::uint8_t> question_section;
  const bool echo = encode_name(question.qname, &question_section);
  if (echo) {
    put16(&question_section, question.qtype);
    put16(&question_section, question.qclass);
  }
  h.qdcount = echo ? 1 : 0;
  h.ancount = (rcode == kRcodeNoError) ? 1 : 0;
  // A positive answer anchors its owner name on the echoed question via a
  // compression pointer, so it cannot be built without one.
  if (!echo && rcode == kRcodeNoError) return {};

  std::vector<std::uint8_t> out;
  encode_header(&out, h);
  out.insert(out.end(), question_section.begin(), question_section.end());
  if (rcode != kRcodeNoError) return out;

  // Answer: pointer to the question name at offset 12 (0xc00c).
  out.push_back(0xc0);
  out.push_back(0x0c);
  put16(&out, rr_type);
  put16(&out, kClassIn);
  put32(&out, ttl_sec);
  put16(&out, rdata_len);
  out.insert(out.end(), rdata, rdata + rdata_len);
  return out;
}

/// Shared body of decode_a_response / decode_aaaa_response: expects one
/// answer of `rr_type` with exactly `rdata_len` rdata bytes.
bool decode_address_response(const std::vector<std::uint8_t>& wire, Header* header,
                             std::uint16_t rr_type, std::uint8_t* rdata,
                             std::uint16_t rdata_len, std::uint32_t* ttl_sec) {
  std::size_t pos = 0;
  if (!decode_header(wire.data(), wire.size(), &pos, header)) return false;
  // Skip the echoed question(s).
  for (std::uint16_t q = 0; q < header->qdcount; ++q) {
    std::string name;
    std::uint16_t t = 0, c = 0;
    if (!decode_name(wire.data(), wire.size(), &pos, &name)) return false;
    if (!get16(wire.data(), wire.size(), &pos, &t) ||
        !get16(wire.data(), wire.size(), &pos, &c)) {
      return false;
    }
  }
  if (header->ancount == 0) return true;  // error responses carry no answer

  std::string name;
  std::uint16_t type = 0, klass = 0, rdlength = 0;
  if (!decode_name(wire.data(), wire.size(), &pos, &name)) return false;
  if (!get16(wire.data(), wire.size(), &pos, &type) ||
      !get16(wire.data(), wire.size(), &pos, &klass) ||
      !get32(wire.data(), wire.size(), &pos, ttl_sec) ||
      !get16(wire.data(), wire.size(), &pos, &rdlength)) {
    return false;
  }
  if (type != rr_type || rdlength != rdata_len) return false;
  if (pos + rdata_len > wire.size()) return false;
  for (std::uint16_t i = 0; i < rdata_len; ++i) rdata[i] = wire[pos + i];
  return true;
}

}  // namespace

Ipv6 v4_mapped_ipv6(std::uint32_t ipv4) {
  Ipv6 out{};  // ::ffff:a.b.c.d — bytes 0..9 zero, 10..11 0xff, 12..15 the v4
  out[10] = 0xff;
  out[11] = 0xff;
  out[12] = static_cast<std::uint8_t>(ipv4 >> 24);
  out[13] = static_cast<std::uint8_t>(ipv4 >> 16);
  out[14] = static_cast<std::uint8_t>(ipv4 >> 8);
  out[15] = static_cast<std::uint8_t>(ipv4);
  return out;
}

std::vector<std::uint8_t> encode_a_response(const Header& query_header,
                                            const Question& question, std::uint32_t ipv4,
                                            std::uint32_t ttl_sec, std::uint8_t rcode) {
  std::uint8_t rdata[4] = {static_cast<std::uint8_t>(ipv4 >> 24),
                           static_cast<std::uint8_t>(ipv4 >> 16),
                           static_cast<std::uint8_t>(ipv4 >> 8),
                           static_cast<std::uint8_t>(ipv4)};
  return encode_address_response(query_header, question, kTypeA, rdata, 4, ttl_sec, rcode);
}

std::vector<std::uint8_t> encode_aaaa_response(const Header& query_header,
                                               const Question& question, const Ipv6& ipv6,
                                               std::uint32_t ttl_sec, std::uint8_t rcode) {
  return encode_address_response(query_header, question, kTypeAaaa, ipv6.data(),
                                 static_cast<std::uint16_t>(ipv6.size()), ttl_sec, rcode);
}

bool decode_a_response(const std::vector<std::uint8_t>& wire, Header* header,
                       std::uint32_t* ipv4, std::uint32_t* ttl_sec) {
  std::uint8_t rdata[4] = {0, 0, 0, 0};
  if (!decode_address_response(wire, header, kTypeA, rdata, 4, ttl_sec)) return false;
  if (header->ancount != 0) {
    *ipv4 = (static_cast<std::uint32_t>(rdata[0]) << 24) |
            (static_cast<std::uint32_t>(rdata[1]) << 16) |
            (static_cast<std::uint32_t>(rdata[2]) << 8) | rdata[3];
  }
  return true;
}

bool decode_aaaa_response(const std::vector<std::uint8_t>& wire, Header* header, Ipv6* ipv6,
                          std::uint32_t* ttl_sec) {
  return decode_address_response(wire, header, kTypeAaaa, ipv6->data(),
                                 static_cast<std::uint16_t>(ipv6->size()), ttl_sec);
}

}  // namespace adattl::dnswire
