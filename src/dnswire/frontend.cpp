#include "dnswire/frontend.h"

#include <cctype>
#include <stdexcept>

namespace adattl::dnswire {

DnsFrontend::DnsFrontend(core::DnsScheduler& scheduler, std::string site_name,
                         std::vector<std::uint32_t> server_ipv4,
                         std::vector<Ipv6> server_ipv6)
    : scheduler_(scheduler), site_name_(std::move(site_name)),
      server_ipv4_(std::move(server_ipv4)), server_ipv6_(std::move(server_ipv6)) {
  if (site_name_.empty()) throw std::invalid_argument("DnsFrontend: empty site name");
  if (server_ipv4_.empty()) throw std::invalid_argument("DnsFrontend: no server addresses");
  if (server_ipv6_.empty()) {
    // Dual-stack without native v6: AAAA answers carry the v4-mapped form.
    server_ipv6_.reserve(server_ipv4_.size());
    for (std::uint32_t v4 : server_ipv4_) server_ipv6_.push_back(v4_mapped_ipv6(v4));
  } else if (server_ipv6_.size() != server_ipv4_.size()) {
    throw std::invalid_argument("DnsFrontend: server_ipv6 size must match server_ipv4");
  }
  for (char& c : site_name_) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  // Every answer echoes this name (positive answers anchor their A record
  // on it), so a name the wire format cannot express would turn each
  // response into a silent drop. Fail construction instead.
  std::vector<std::uint8_t> scratch;
  if (!encode_name(site_name_, &scratch)) {
    throw std::invalid_argument("DnsFrontend: site name is not encodable as a DNS name");
  }
}

void DnsFrontend::set_outages(const fault::DnsOutageCalendar* calendar,
                              const sim::Simulator* clock) {
  if ((calendar == nullptr) != (clock == nullptr)) {
    throw std::invalid_argument("DnsFrontend: calendar and clock must be set together");
  }
  outages_ = calendar;
  clock_ = clock;
}

std::vector<std::uint8_t> DnsFrontend::handle(const std::vector<std::uint8_t>& query,
                                              web::DomainId source_domain) {
  Header header;
  Question question;
  if (!decode_query(query, &header, &question)) {
    ++errors_;
    if (query.size() < 2) return {};  // cannot even echo an id: drop
    // Enough header to answer FORMERR; echo what we parsed (qdcount may be
    // wrong, so answer with an empty question echo via a minimal message).
    Question empty;
    empty.qname = site_name_;
    empty.qtype = kTypeA;
    empty.qclass = kClassIn;
    header.id = static_cast<std::uint16_t>((query[0] << 8) | query[1]);
    return encode_a_response(header, empty, 0, 0, kRcodeFormErr);
  }
  if (header.qr || header.opcode != 0) {
    ++errors_;
    return encode_a_response(header, question, 0, 0, kRcodeFormErr);
  }
  if ((question.qtype != kTypeA && question.qtype != kTypeAaaa) ||
      question.qclass != kClassIn) {
    ++errors_;
    return encode_a_response(header, question, 0, 0, kRcodeNotImp);
  }
  if (question.qname != site_name_) {
    ++errors_;
    return encode_a_response(header, question, 0, 0, kRcodeNxDomain);
  }

  if (outages_ && outages_->unreachable(clock_->now())) {
    // The question was valid — this is our outage, not the client's
    // mistake. SERVFAIL tells the resolver to retry later; no scheduling
    // decision is consumed (the scheduler is the thing that is down).
    ++outage_failures_;
    return encode_a_response(header, question, 0, 0, kRcodeServFail);
  }

  const core::Decision decision = scheduler_.schedule(source_domain);
  const auto server = static_cast<std::size_t>(decision.server);
  if (server >= server_ipv4_.size()) {
    ++errors_;
    return encode_a_response(header, question, 0, 0, kRcodeRefused);
  }
  ++answered_;
  // DNS TTLs are integral seconds; never round an adaptive TTL down to 0.
  const auto ttl = static_cast<std::uint32_t>(decision.ttl_sec < 1.0 ? 1.0 : decision.ttl_sec);
  if (question.qtype == kTypeAaaa) {
    return encode_aaaa_response(header, question, server_ipv6_[server], ttl);
  }
  return encode_a_response(header, question, server_ipv4_[server], ttl);
}

}  // namespace adattl::dnswire
