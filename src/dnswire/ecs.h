#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "web/types.h"

namespace adattl::dnswire {

/// EDNS0 Client-Subnet (RFC 7871) support: the daemon keys its hidden-load
/// estimate on the *client's* subnet when the resolver forwards one,
/// instead of hashing the resolver's source address. This is the
/// information structure the paper's DomainId abstracts: requests from one
/// subnet share one local name server population.

inline constexpr std::uint16_t kTypeOpt = 41;        ///< OPT pseudo-RR (RFC 6891)
inline constexpr std::uint16_t kOptionClientSubnet = 8;  ///< ECS option code

inline constexpr std::uint16_t kEcsFamilyIpv4 = 1;
inline constexpr std::uint16_t kEcsFamilyIpv6 = 2;

/// One parsed ECS option. `address` holds exactly ceil(source_prefix/8)
/// bytes (the wire form), masked so bits past the prefix are zero.
struct ClientSubnet {
  std::uint16_t family = 0;
  std::uint8_t source_prefix = 0;
  std::uint8_t scope_prefix = 0;
  std::uint8_t address_len = 0;           ///< bytes of `address` in use
  std::array<std::uint8_t, 16> address{};  ///< network byte order, masked
};

/// What scanning a query for an ECS option concluded.
enum class EcsResult {
  kAbsent,     ///< no OPT RR, or an OPT without an ECS option
  kPresent,    ///< well-formed ECS parsed into the out-param
  kMalformed,  ///< an ECS option exists but its lengths/family lie
};

/// Scans a DNS query for an EDNS0 OPT RR carrying a Client-Subnet option.
/// Walks the question and every resource record with full bounds checking;
/// any structural damage on the way (bad name, truncated RR, lying
/// rdlength/option length, impossible prefix for the family) yields
/// kMalformed so the caller can fall back to source hashing. Memory-safe
/// on arbitrary bytes — fuzzed alongside the message decoders.
EcsResult extract_client_subnet(const std::uint8_t* data, std::size_t size,
                                ClientSubnet* out);

inline EcsResult extract_client_subnet(const std::vector<std::uint8_t>& wire,
                                       ClientSubnet* out) {
  return extract_client_subnet(wire.data(), wire.size(), out);
}

/// Stable 64-bit digest of a subnet (family + prefix + masked address):
/// the ECS-derived replacement for the source-address hash.
std::uint64_t subnet_hash(const ClientSubnet& subnet);

/// The legacy requester key: hash of the resolver's address + port. This
/// is bit-for-bit the mapping the original single-socket daemon used, kept
/// as its own function so the golden equivalence test can pin it.
inline std::uint32_t source_hash(std::uint32_t src_ip_host, std::uint16_t src_port) {
  return src_ip_host ^ (static_cast<std::uint32_t>(src_port) * 2654435761u);
}

/// Where a derived domain key came from (per-shard counters report these).
enum class DomainKeySource {
  kEcs,               ///< well-formed ECS option
  kSourceHash,        ///< no ECS in the query (or ECS disabled)
  kMalformedFallback  ///< ECS present but malformed: fell back to the hash
};

/// Maps one query datagram to a DomainId: the client subnet when a
/// well-formed ECS option is present (and `ecs_enabled`), the legacy
/// source hash otherwise. Always returns a value in [0, num_domains).
web::DomainId derive_domain_key(const std::uint8_t* data, std::size_t size,
                                std::uint32_t src_ip_host, std::uint16_t src_port,
                                int num_domains, bool ecs_enabled,
                                DomainKeySource* source = nullptr);

/// Appends an EDNS0 OPT RR carrying the given Client-Subnet option to an
/// encoded query (and bumps its arcount). Test/load-generator helper; the
/// subnet's address_len must match ceil(source_prefix/8).
void append_ecs_option(std::vector<std::uint8_t>* query, const ClientSubnet& subnet,
                       std::uint16_t udp_payload_size = 1232);

}  // namespace adattl::dnswire
