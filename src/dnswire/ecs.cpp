#include "dnswire/ecs.h"

#include "dnswire/message.h"

namespace adattl::dnswire {
namespace {

bool get8(const std::uint8_t* data, std::size_t size, std::size_t* pos, std::uint8_t* v) {
  if (*pos + 1 > size) return false;
  *v = data[*pos];
  *pos += 1;
  return true;
}

bool get16be(const std::uint8_t* data, std::size_t size, std::size_t* pos, std::uint16_t* v) {
  if (*pos + 2 > size) return false;
  *v = static_cast<std::uint16_t>((data[*pos] << 8) | data[*pos + 1]);
  *pos += 2;
  return true;
}

/// Parses the payload of one ECS option (past code/length). Returns false
/// on any length/family lie.
bool parse_ecs_payload(const std::uint8_t* data, std::size_t len, ClientSubnet* out) {
  std::size_t pos = 0;
  std::uint8_t source = 0, scope = 0;
  if (!get16be(data, len, &pos, &out->family) || !get8(data, len, &pos, &source) ||
      !get8(data, len, &pos, &scope)) {
    return false;
  }
  const std::size_t addr_bytes = (static_cast<std::size_t>(source) + 7) / 8;
  // RFC 7871 §6: the address field is exactly ceil(prefix/8) bytes.
  if (len - pos != addr_bytes) return false;
  if (out->family == kEcsFamilyIpv4) {
    if (source > 32) return false;
  } else if (out->family == kEcsFamilyIpv6) {
    if (source > 128) return false;
  } else {
    return false;
  }
  out->source_prefix = source;
  out->scope_prefix = scope;
  out->address_len = static_cast<std::uint8_t>(addr_bytes);
  out->address.fill(0);
  for (std::size_t i = 0; i < addr_bytes; ++i) out->address[i] = data[pos + i];
  // Mask bits past the prefix so equal subnets hash equally regardless of
  // what the resolver left in the tail of the last byte.
  const std::uint8_t tail_bits = static_cast<std::uint8_t>(source % 8);
  if (tail_bits != 0 && addr_bytes > 0) {
    out->address[addr_bytes - 1] &=
        static_cast<std::uint8_t>(0xff << (8 - tail_bits));
  }
  return true;
}

}  // namespace

EcsResult extract_client_subnet(const std::uint8_t* data, std::size_t size,
                                ClientSubnet* out) {
  std::size_t pos = 0;
  // Header: id + flags + 4 counts.
  if (size < 12) return EcsResult::kAbsent;
  const std::uint16_t qdcount = static_cast<std::uint16_t>((data[4] << 8) | data[5]);
  const std::uint16_t ancount = static_cast<std::uint16_t>((data[6] << 8) | data[7]);
  const std::uint16_t nscount = static_cast<std::uint16_t>((data[8] << 8) | data[9]);
  const std::uint16_t arcount = static_cast<std::uint16_t>((data[10] << 8) | data[11]);
  if (arcount == 0) return EcsResult::kAbsent;  // an OPT RR can only live there
  pos = 12;

  // Skip the question section.
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    std::string name;
    if (!decode_name(data, size, &pos, &name)) return EcsResult::kMalformed;
    if (pos + 4 > size) return EcsResult::kMalformed;
    pos += 4;  // qtype + qclass
  }

  // Walk every RR; the OPT pseudo-RR is conventionally in the additional
  // section but a lying count puts it anywhere, so just scan all of them.
  const std::uint32_t rrs = static_cast<std::uint32_t>(ancount) + nscount + arcount;
  for (std::uint32_t r = 0; r < rrs; ++r) {
    std::string name;
    if (!decode_name(data, size, &pos, &name)) return EcsResult::kMalformed;
    std::uint16_t type = 0, klass = 0, rdlength = 0;
    if (!get16be(data, size, &pos, &type) || !get16be(data, size, &pos, &klass)) {
      return EcsResult::kMalformed;
    }
    if (pos + 4 > size) return EcsResult::kMalformed;
    pos += 4;  // ttl (OPT: extended rcode + flags)
    if (!get16be(data, size, &pos, &rdlength)) return EcsResult::kMalformed;
    if (pos + rdlength > size) return EcsResult::kMalformed;
    if (type == kTypeOpt) {
      // Walk the option list inside this OPT's rdata.
      std::size_t opt_pos = pos;
      const std::size_t opt_end = pos + rdlength;
      while (opt_pos < opt_end) {
        std::uint16_t code = 0, optlen = 0;
        if (!get16be(data, opt_end, &opt_pos, &code) ||
            !get16be(data, opt_end, &opt_pos, &optlen)) {
          return EcsResult::kMalformed;
        }
        if (opt_pos + optlen > opt_end) return EcsResult::kMalformed;
        if (code == kOptionClientSubnet) {
          return parse_ecs_payload(data + opt_pos, optlen, out) ? EcsResult::kPresent
                                                                : EcsResult::kMalformed;
        }
        opt_pos += optlen;
      }
      // An OPT without an ECS option: keep scanning (another OPT may lie
      // later; real servers would FORMERR duplicates, we only need a key).
    }
    pos += rdlength;
  }
  return EcsResult::kAbsent;
}

std::uint64_t subnet_hash(const ClientSubnet& subnet) {
  // FNV-1a over family, prefix and the masked address bytes.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint8_t>(subnet.family >> 8));
  mix(static_cast<std::uint8_t>(subnet.family & 0xff));
  mix(subnet.source_prefix);
  for (std::uint8_t i = 0; i < subnet.address_len; ++i) mix(subnet.address[i]);
  return h;
}

web::DomainId derive_domain_key(const std::uint8_t* data, std::size_t size,
                                std::uint32_t src_ip_host, std::uint16_t src_port,
                                int num_domains, bool ecs_enabled,
                                DomainKeySource* source) {
  const auto domains = static_cast<std::uint64_t>(num_domains);
  if (ecs_enabled) {
    ClientSubnet subnet;
    switch (extract_client_subnet(data, size, &subnet)) {
      case EcsResult::kPresent:
        if (source) *source = DomainKeySource::kEcs;
        return static_cast<web::DomainId>(subnet_hash(subnet) % domains);
      case EcsResult::kMalformed:
        if (source) *source = DomainKeySource::kMalformedFallback;
        return static_cast<web::DomainId>(source_hash(src_ip_host, src_port) % domains);
      case EcsResult::kAbsent:
        break;
    }
  }
  if (source) *source = DomainKeySource::kSourceHash;
  return static_cast<web::DomainId>(source_hash(src_ip_host, src_port) % domains);
}

void append_ecs_option(std::vector<std::uint8_t>* query, const ClientSubnet& subnet,
                       std::uint16_t udp_payload_size) {
  if (query->size() < 12) return;
  const auto put16 = [query](std::uint16_t v) {
    query->push_back(static_cast<std::uint8_t>(v >> 8));
    query->push_back(static_cast<std::uint8_t>(v & 0xff));
  };
  query->push_back(0);  // root owner name
  put16(kTypeOpt);
  put16(udp_payload_size);  // "class" carries the UDP payload size
  query->push_back(0);      // extended rcode
  query->push_back(0);      // EDNS version
  put16(0);                 // flags
  const std::uint16_t optlen = static_cast<std::uint16_t>(4 + subnet.address_len);
  put16(static_cast<std::uint16_t>(4 + optlen));  // rdlength
  put16(kOptionClientSubnet);
  put16(optlen);
  put16(subnet.family);
  query->push_back(subnet.source_prefix);
  query->push_back(subnet.scope_prefix);
  for (std::uint8_t i = 0; i < subnet.address_len; ++i) {
    query->push_back(subnet.address[i]);
  }
  // Bump arcount (bytes 10/11 of the header).
  const std::uint16_t arcount =
      static_cast<std::uint16_t>(((*query)[10] << 8) | (*query)[11]) + 1;
  (*query)[10] = static_cast<std::uint8_t>(arcount >> 8);
  (*query)[11] = static_cast<std::uint8_t>(arcount & 0xff);
}

}  // namespace adattl::dnswire
