#include "dnscache/client_cache.h"

namespace adattl::dnscache {

ClientCache::ClientCache(sim::Simulator& sim, NameServer& upstream)
    : sim_(sim), upstream_(upstream) {}

bool ClientCache::has_fresh_mapping() const {
  return mapping_.server >= 0 && sim_.now() < mapping_.expires_at;
}

web::ServerId ClientCache::resolve() {
  if (has_fresh_mapping()) {
    ++hits_;
    return mapping_.server;
  }
  mapping_ = upstream_.resolve_mapping();
  ++upstream_queries_;
  return mapping_.server;
}

}  // namespace adattl::dnscache
