#pragma once

#include "sim/time.h"
#include "web/types.h"

namespace adattl::dnscache {

/// A cached name-to-address mapping with its expiry instant (absolute
/// simulated time). Downstream caches inherit the *remaining* TTL, as real
/// DNS resolvers do.
struct Mapping {
  web::ServerId server = -1;
  sim::SimTime expires_at = sim::kTimeNever;
};

/// Anything a client can resolve the site name through: the domain's name
/// server directly, or a client-side cache stacked on top of it.
class Resolver {
 public:
  virtual ~Resolver() = default;

  /// Resolves the site name to a server address.
  virtual web::ServerId resolve() = 0;

  /// The client domain this resolver serves.
  virtual web::DomainId domain() const = 0;
};

}  // namespace adattl::dnscache
