#pragma once

#include <cstdint>

#include "core/scheduler.h"
#include "dnscache/resolver.h"
#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "web/types.h"

namespace adattl::dnscache {

/// How a name server treats TTL values it considers too small.
///
/// Paper §5.2: "there does not exist a common TTL lower bound which is
/// accepted by all NSs ... we consider the worst case scenario, where all
/// NSs become non-cooperative if the proposed TTL is lower than a given
/// minimum threshold". A proposed TTL below `min_accepted_sec` is replaced
/// by `override_sec` (defaults to the threshold itself).
struct NsTtlBehavior {
  double min_accepted_sec = 0.0;
  double override_sec = 0.0;  // 0 ⇒ use min_accepted_sec

  double effective_ttl(double proposed) const {
    if (proposed >= min_accepted_sec) return proposed;
    return override_sec > 0.0 ? override_sec : min_accepted_sec;
  }
};

/// The local name server of one client domain.
///
/// Address requests within the cached mapping's TTL are answered locally;
/// the first request after expiry goes to the authoritative DNS scheduler.
/// This cache is exactly why the DNS controls so few requests — the core
/// problem the adaptive TTL algorithms are designed around.
class NameServer : public Resolver {
 public:
  NameServer(sim::Simulator& sim, web::DomainId domain, core::DnsScheduler& dns,
             NsTtlBehavior behavior = {});

  /// Resolves the site name for one client of this domain.
  web::ServerId resolve() override;

  /// Like resolve(), but also reports when the returned mapping expires,
  /// so client-side caches can inherit the remaining TTL.
  Mapping resolve_mapping();

  web::DomainId domain() const override { return domain_; }

  /// True if a mapping is currently cached and fresh.
  bool has_fresh_mapping() const;

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t authoritative_queries() const { return authoritative_queries_; }

  const NsTtlBehavior& behavior() const { return behavior_; }

  /// Registers this NS's instruments. All name servers registering on the
  /// same registry share the aggregate "ns.*" cells (cache hits/misses and
  /// the effective-TTL distribution); trace records carry the domain id.
  void bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer);

 private:
  sim::Simulator& sim_;
  web::DomainId domain_;
  core::DnsScheduler& dns_;
  NsTtlBehavior behavior_;

  web::ServerId cached_server_ = -1;
  sim::SimTime expires_at_ = sim::kTimeNever;

  std::uint64_t cache_hits_ = 0;
  std::uint64_t authoritative_queries_ = 0;

  obs::Counter obs_hits_;
  obs::Counter obs_misses_;
  obs::HistogramHandle obs_effective_ttl_;
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace adattl::dnscache
