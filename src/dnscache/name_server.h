#pragma once

#include <algorithm>
#include <cstdint>

#include "core/scheduler.h"
#include "dnscache/resolver.h"
#include "fault/dns_outage.h"
#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "web/types.h"

namespace adattl::dnscache {

/// How a name server treats TTL values it considers too small.
///
/// Paper §5.2: "there does not exist a common TTL lower bound which is
/// accepted by all NSs ... we consider the worst case scenario, where all
/// NSs become non-cooperative if the proposed TTL is lower than a given
/// minimum threshold". A proposed TTL below `min_accepted_sec` is replaced
/// by `override_sec` (defaults to the threshold itself).
struct NsTtlBehavior {
  double min_accepted_sec = 0.0;
  double override_sec = 0.0;  // 0 ⇒ use min_accepted_sec

  /// Smallest TTL a cached record can carry: whatever the behavior fields
  /// say, a record is never cached for less than one second (a zero or
  /// negative TTL would make the cache a pure pass-through and, worse,
  /// an already-expired record).
  static constexpr double kFloorTtlSec = 1.0;

  /// The TTL actually cached for a proposed TTL. Invariants: the result
  /// is always > 0, and never below min_accepted_sec when that is set.
  /// An override below the minimum threshold is clamped *up* to it — the
  /// non-cooperative NS substitutes a value it would accept, so honoring
  /// a smaller override would contradict the threshold it enforces.
  double effective_ttl(double proposed) const {
    if (proposed >= min_accepted_sec && proposed > 0.0) return proposed;
    const double replacement = std::max(override_sec, min_accepted_sec);
    return replacement > 0.0 ? replacement : kFloorTtlSec;
  }
};

/// Retry behavior of a name server that cannot reach the authoritative
/// DNS: capped exponential backoff. The first failed query arms
/// `initial_backoff_sec`; every further failed *attempt* multiplies the
/// interval by `multiplier` up to `max_backoff_sec`. Queries landing
/// inside the backoff window are answered from the cache without even
/// attempting the upstream (that is what backoff means), so an outage
/// costs O(log duration) attempts instead of one per expiry.
struct NsRetryPolicy {
  double initial_backoff_sec = 1.0;
  double max_backoff_sec = 64.0;
  double multiplier = 2.0;

  /// Throws std::invalid_argument on non-positive fields or max < initial.
  void validate() const;
};

/// The local name server of one client domain.
///
/// Address requests within the cached mapping's TTL are answered locally;
/// the first request after expiry goes to the authoritative DNS scheduler.
/// This cache is exactly why the DNS controls so few requests — the core
/// problem the adaptive TTL algorithms are designed around.
///
/// When an outage calendar is attached (set_dns_outages), a query that
/// finds the authoritative DNS unreachable falls back to *stale-serving*:
/// the expired mapping is returned with an already-past expiry (so
/// downstream caches will not keep it), a retry is armed with capped
/// exponential backoff, and the failure is counted. A NS that has never
/// resolved anything returns Mapping{-1, now} — resolution failure the
/// client must handle.
class NameServer : public Resolver {
 public:
  NameServer(sim::Simulator& sim, web::DomainId domain, core::DnsScheduler& dns,
             NsTtlBehavior behavior = {});

  /// Resolves the site name for one client of this domain.
  web::ServerId resolve() override;

  /// Like resolve(), but also reports when the returned mapping expires,
  /// so client-side caches can inherit the remaining TTL.
  Mapping resolve_mapping();

  web::DomainId domain() const override { return domain_; }

  /// True if a mapping is currently cached and fresh.
  bool has_fresh_mapping() const;

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t authoritative_queries() const { return authoritative_queries_; }

  /// Attaches the authoritative-DNS availability calendar (owned by the
  /// fault injector; may be null to detach) and the retry behavior.
  void set_dns_outages(const fault::DnsOutageCalendar* calendar,
                       NsRetryPolicy retry = {});

  /// Expired answers served because the authoritative DNS was unreachable.
  std::uint64_t stale_serves() const { return stale_serves_; }
  /// Upstream query attempts that found the DNS unreachable.
  std::uint64_t failed_queries() const { return failed_queries_; }

  const NsTtlBehavior& behavior() const { return behavior_; }

  /// Registers this NS's instruments. All name servers registering on the
  /// same registry share the aggregate "ns.*" cells (cache hits/misses and
  /// the effective-TTL distribution); trace records carry the domain id.
  void bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer);

 private:
  Mapping serve_unreachable();

  sim::Simulator& sim_;
  web::DomainId domain_;
  core::DnsScheduler& dns_;
  NsTtlBehavior behavior_;
  NsRetryPolicy retry_;
  const fault::DnsOutageCalendar* outages_ = nullptr;  // null = always reachable

  web::ServerId cached_server_ = -1;
  sim::SimTime expires_at_ = sim::kTimeNever;

  // Backoff state: no upstream attempt before next_attempt_at_;
  // current_backoff_sec_ == 0 means "not backing off" (last attempt OK).
  sim::SimTime next_attempt_at_ = 0.0;
  double current_backoff_sec_ = 0.0;

  std::uint64_t cache_hits_ = 0;
  std::uint64_t authoritative_queries_ = 0;
  std::uint64_t stale_serves_ = 0;
  std::uint64_t failed_queries_ = 0;

  obs::Counter obs_hits_;
  obs::Counter obs_misses_;
  obs::Counter obs_stale_;
  obs::Counter obs_failed_;
  obs::HistogramHandle obs_effective_ttl_;
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace adattl::dnscache
