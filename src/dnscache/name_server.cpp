#include "dnscache/name_server.h"

namespace adattl::dnscache {

NameServer::NameServer(sim::Simulator& sim, web::DomainId domain, core::DnsScheduler& dns,
                       NsTtlBehavior behavior)
    : sim_(sim), domain_(domain), dns_(dns), behavior_(behavior) {}

bool NameServer::has_fresh_mapping() const {
  return cached_server_ >= 0 && sim_.now() < expires_at_;
}

web::ServerId NameServer::resolve() { return resolve_mapping().server; }

Mapping NameServer::resolve_mapping() {
  if (has_fresh_mapping()) {
    ++cache_hits_;
    return Mapping{cached_server_, expires_at_};
  }
  const core::Decision d = dns_.schedule(domain_);
  ++authoritative_queries_;
  cached_server_ = d.server;
  expires_at_ = sim_.now() + behavior_.effective_ttl(d.ttl_sec);
  return Mapping{cached_server_, expires_at_};
}

}  // namespace adattl::dnscache
