#include "dnscache/name_server.h"

#include <algorithm>
#include <stdexcept>

namespace adattl::dnscache {

void NsRetryPolicy::validate() const {
  if (initial_backoff_sec <= 0.0) {
    throw std::invalid_argument("NsRetryPolicy: initial backoff must be > 0");
  }
  if (max_backoff_sec < initial_backoff_sec) {
    throw std::invalid_argument("NsRetryPolicy: max backoff must be >= initial");
  }
  if (multiplier < 1.0) {
    throw std::invalid_argument("NsRetryPolicy: multiplier must be >= 1");
  }
}

NameServer::NameServer(sim::Simulator& sim, web::DomainId domain, core::DnsScheduler& dns,
                       NsTtlBehavior behavior)
    : sim_(sim), domain_(domain), dns_(dns), behavior_(behavior) {}

void NameServer::set_dns_outages(const fault::DnsOutageCalendar* calendar,
                                 NsRetryPolicy retry) {
  retry.validate();
  outages_ = calendar;
  retry_ = retry;
  next_attempt_at_ = 0.0;
  current_backoff_sec_ = 0.0;
}

bool NameServer::has_fresh_mapping() const {
  return cached_server_ >= 0 && sim_.now() < expires_at_;
}

web::ServerId NameServer::resolve() { return resolve_mapping().server; }

Mapping NameServer::serve_unreachable() {
  // One real attempt per backoff window; queries inside the window go
  // straight to the (stale) cache.
  if (sim_.now() >= next_attempt_at_) {
    ++failed_queries_;
    obs_failed_.inc();
    current_backoff_sec_ = current_backoff_sec_ == 0.0
                               ? retry_.initial_backoff_sec
                               : std::min(current_backoff_sec_ * retry_.multiplier,
                                          retry_.max_backoff_sec);
    next_attempt_at_ = sim_.now() + current_backoff_sec_;
  }
  if (cached_server_ >= 0) {
    // Stale-serve: better a possibly-dead server than no answer at all.
    // The mapping expires *now* so nothing downstream caches it as fresh.
    ++stale_serves_;
    obs_stale_.inc();
    if (tracer_) {
      tracer_->record(sim_.now(), obs::TraceKind::kStaleServe, domain_, cached_server_);
    }
    return Mapping{cached_server_, sim_.now()};
  }
  // Cold cache and no upstream: resolution fails outright.
  return Mapping{-1, sim_.now()};
}

Mapping NameServer::resolve_mapping() {
  if (has_fresh_mapping()) {
    ++cache_hits_;
    obs_hits_.inc();
    return Mapping{cached_server_, expires_at_};
  }
  if (outages_ && (sim_.now() < next_attempt_at_ || outages_->unreachable(sim_.now()))) {
    return serve_unreachable();
  }
  current_backoff_sec_ = 0.0;  // reachable again: reset the backoff ladder
  const core::Decision d = dns_.schedule(domain_);
  ++authoritative_queries_;
  const double effective = behavior_.effective_ttl(d.ttl_sec);
  obs_misses_.inc();
  obs_effective_ttl_.observe(effective);
  if (tracer_) tracer_->record(sim_.now(), obs::TraceKind::kNsRefresh, domain_, d.server, effective);
  cached_server_ = d.server;
  expires_at_ = sim_.now() + effective;
  return Mapping{cached_server_, expires_at_};
}

void NameServer::bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (registry) {
    obs_hits_ = registry->counter("ns.cache_hits");
    obs_misses_ = registry->counter("ns.authoritative_queries");
    obs_stale_ = registry->counter("ns.stale_serves");
    obs_failed_ = registry->counter("ns.failed_queries");
    obs_effective_ttl_ = registry->histogram("ns.effective_ttl_sec", 3600.0, 144);
  }
}

}  // namespace adattl::dnscache
