#include "dnscache/name_server.h"

namespace adattl::dnscache {

NameServer::NameServer(sim::Simulator& sim, web::DomainId domain, core::DnsScheduler& dns,
                       NsTtlBehavior behavior)
    : sim_(sim), domain_(domain), dns_(dns), behavior_(behavior) {}

bool NameServer::has_fresh_mapping() const {
  return cached_server_ >= 0 && sim_.now() < expires_at_;
}

web::ServerId NameServer::resolve() { return resolve_mapping().server; }

Mapping NameServer::resolve_mapping() {
  if (has_fresh_mapping()) {
    ++cache_hits_;
    obs_hits_.inc();
    return Mapping{cached_server_, expires_at_};
  }
  const core::Decision d = dns_.schedule(domain_);
  ++authoritative_queries_;
  const double effective = behavior_.effective_ttl(d.ttl_sec);
  obs_misses_.inc();
  obs_effective_ttl_.observe(effective);
  if (tracer_) tracer_->record(sim_.now(), obs::TraceKind::kNsRefresh, domain_, d.server, effective);
  cached_server_ = d.server;
  expires_at_ = sim_.now() + effective;
  return Mapping{cached_server_, expires_at_};
}

void NameServer::bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (registry) {
    obs_hits_ = registry->counter("ns.cache_hits");
    obs_misses_ = registry->counter("ns.authoritative_queries");
    obs_effective_ttl_ = registry->histogram("ns.effective_ttl_sec", 3600.0, 144);
  }
}

}  // namespace adattl::dnscache
