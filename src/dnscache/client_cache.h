#pragma once

#include <cstdint>

#include "dnscache/name_server.h"
#include "dnscache/resolver.h"
#include "sim/simulator.h"

namespace adattl::dnscache {

/// Per-client address cache stacked on top of the domain's name server
/// (paper §1: "caching of the address mapping is typically done at Name
/// Servers and also at the clients").
///
/// The cache inherits the *remaining* TTL of the NS's mapping, so a client
/// that resolved late in the NS's TTL window holds the mapping only until
/// the NS's own entry expires — standard DNS semantics. With client
/// caching enabled, back-to-back sessions of one client stick to the same
/// server across the whole TTL, further shrinking the DNS's control.
class ClientCache : public Resolver {
 public:
  explicit ClientCache(sim::Simulator& sim, NameServer& upstream);

  web::ServerId resolve() override;
  web::DomainId domain() const override { return upstream_.domain(); }

  bool has_fresh_mapping() const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t upstream_queries() const { return upstream_queries_; }

 private:
  sim::Simulator& sim_;
  NameServer& upstream_;
  Mapping mapping_;
  std::uint64_t hits_ = 0;
  std::uint64_t upstream_queries_ = 0;
};

}  // namespace adattl::dnscache
