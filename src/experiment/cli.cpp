#include "experiment/cli.h"

#include <algorithm>
#include <stdexcept>

#include "experiment/scenario_file.h"
#include "fault/fault_schedule.h"

namespace adattl::experiment {
namespace {

double parse_double(const std::string& flag, const std::string& value) {
  std::size_t pos = 0;
  double out = 0;
  try {
    out = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(flag + ": expected a number, got '" + value + "'");
  }
  if (pos != value.size()) {
    throw std::invalid_argument(flag + ": trailing junk in '" + value + "'");
  }
  return out;
}

long parse_long(const std::string& flag, const std::string& value) {
  const double d = parse_double(flag, value);
  const long l = static_cast<long>(d);
  if (static_cast<double>(l) != d) {
    throw std::invalid_argument(flag + ": expected an integer, got '" + value + "'");
  }
  return l;
}

std::vector<double> parse_double_list(const std::string& flag, const std::string& value) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string item =
        value.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item.empty()) throw std::invalid_argument(flag + ": empty list element");
    out.push_back(parse_double(flag, item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions opt;

  // Expand --config=FILE inline so later flags override the file's values.
  std::vector<std::string> expanded;
  for (const std::string& arg : args) {
    if (arg.rfind("--config=", 0) == 0) {
      const std::string path = arg.substr(9);
      if (path.empty()) throw std::invalid_argument("--config: requires a file path");
      std::vector<std::string> file_args = load_scenario_file(path);
      for (const std::string& fa : file_args) {
        if (fa.rfind("--config", 0) == 0) {
          throw std::invalid_argument("scenario files cannot nest --config");
        }
        expanded.push_back(fa);
      }
    } else {
      expanded.push_back(arg);
    }
  }

  for (const std::string& arg : expanded) {
    std::string flag = arg;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flag = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto require_value = [&]() -> const std::string& {
      if (eq == std::string::npos || value.empty()) {
        throw std::invalid_argument(flag + ": requires a value (" + flag + "=...)");
      }
      return value;
    };

    if (flag == "--policy") {
      opt.config.policy = require_value();
    } else if (flag == "--heterogeneity") {
      opt.config.cluster =
          web::table2_cluster(static_cast<int>(parse_long(flag, require_value())));
    } else if (flag == "--relative") {
      opt.config.cluster.relative = parse_double_list(flag, require_value());
    } else if (flag == "--total-capacity") {
      opt.config.cluster.total_capacity_hits_per_sec = parse_double(flag, require_value());
    } else if (flag == "--domains") {
      opt.config.num_domains = static_cast<int>(parse_long(flag, require_value()));
    } else if (flag == "--clients") {
      opt.config.total_clients = static_cast<int>(parse_long(flag, require_value()));
    } else if (flag == "--think") {
      opt.config.mean_think_sec = parse_double(flag, require_value());
    } else if (flag == "--zipf-theta") {
      opt.config.zipf_theta = parse_double(flag, require_value());
    } else if (flag == "--uniform") {
      opt.config.uniform_clients = true;
    } else if (flag == "--error") {
      opt.config.rate_perturbation_percent = parse_double(flag, require_value());
    } else if (flag == "--min-ttl") {
      opt.config.ns_min_ttl_sec = parse_double(flag, require_value());
    } else if (flag == "--ns-per-domain") {
      opt.config.ns_per_domain = static_cast<int>(parse_long(flag, require_value()));
    } else if (flag == "--ttl") {
      opt.config.reference_ttl_sec = parse_double(flag, require_value());
    } else if (flag == "--alarm-threshold") {
      opt.config.alarm_threshold = parse_double(flag, require_value());
    } else if (flag == "--no-alarm") {
      opt.config.alarm_enabled = false;
    } else if (flag == "--queue-alarm") {
      opt.config.alarm_queue_threshold =
          static_cast<std::size_t>(parse_long(flag, require_value()));
    } else if (flag == "--outage") {
      // START:DURATION:SERVER
      const std::string& v = require_value();
      const std::size_t c1 = v.find(':');
      const std::size_t c2 = c1 == std::string::npos ? std::string::npos : v.find(':', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) {
        throw std::invalid_argument("--outage: expected START:DURATION:SERVER, got '" + v + "'");
      }
      ServerOutage outage;
      outage.start_sec = parse_double(flag, v.substr(0, c1));
      outage.duration_sec = parse_double(flag, v.substr(c1 + 1, c2 - c1 - 1));
      outage.server = static_cast<int>(parse_long(flag, v.substr(c2 + 1)));
      opt.config.outages.push_back(outage);
    } else if (flag == "--faults") {
      // Whole fault file; merges with any inline fault flags.
      opt.config.faults.merge(fault::load_fault_file(require_value()));
    } else if (flag == "--crash") {
      opt.config.faults.crashes.push_back(fault::FaultSchedule::parse_crash(require_value()));
    } else if (flag == "--degrade") {
      opt.config.faults.degradations.push_back(
          fault::FaultSchedule::parse_degrade(require_value()));
    } else if (flag == "--dns-outage") {
      opt.config.faults.dns_outages.push_back(
          fault::FaultSchedule::parse_dns_outage(require_value()));
    } else if (flag == "--retry-delay") {
      opt.config.client_retry_delay_sec = parse_double(flag, require_value());
    } else if (flag == "--no-calibration") {
      opt.config.calibrate_ttl = false;
    } else if (flag == "--measured") {
      opt.config.oracle_weights = false;
    } else if (flag == "--estimator") {
      const std::string& v = require_value();
      if (v == "ewma") {
        opt.config.estimator_kind = EstimatorKind::kEwma;
      } else if (v == "window") {
        opt.config.estimator_kind = EstimatorKind::kSlidingWindow;
      } else {
        throw std::invalid_argument("--estimator: expected 'ewma' or 'window', got '" + v + "'");
      }
    } else if (flag == "--cold-start") {
      opt.config.estimator_cold_start = true;
    } else if (flag == "--client-cache") {
      opt.config.client_cache_enabled = true;
    } else if (flag == "--redirect") {
      opt.config.redirect_enabled = true;
    } else if (flag == "--redirect-wait") {
      opt.config.redirect_enabled = true;
      opt.config.redirect_max_wait_sec = parse_double(flag, require_value());
    } else if (flag == "--redirect-delay") {
      opt.config.redirect_delay_sec = parse_double(flag, require_value());
    } else if (flag == "--geo-regions") {
      opt.config.geo_regions = static_cast<int>(parse_long(flag, require_value()));
    } else if (flag == "--geo-intra") {
      opt.config.geo_intra_rtt_sec = parse_double(flag, require_value());
    } else if (flag == "--geo-inter") {
      opt.config.geo_inter_rtt_sec = parse_double(flag, require_value());
    } else if (flag == "--duration") {
      opt.config.duration_sec = parse_double(flag, require_value());
    } else if (flag == "--warmup") {
      opt.config.warmup_sec = parse_double(flag, require_value());
    } else if (flag == "--seed") {
      opt.config.seed = static_cast<std::uint64_t>(parse_long(flag, require_value()));
    } else if (flag == "--replications") {
      opt.replications = static_cast<int>(parse_long(flag, require_value()));
      if (opt.replications < 1) throw std::invalid_argument("--replications: need >= 1");
    } else if (flag == "--jobs") {
      opt.jobs = static_cast<int>(parse_long(flag, require_value()));
      if (opt.jobs < 1) throw std::invalid_argument("--jobs: need >= 1");
    } else if (flag == "--trace") {
      opt.trace_path = require_value();
    } else if (flag == "--decisions") {
      opt.decisions_path = require_value();
    } else if (flag == "--metrics") {
      opt.config.metrics_enabled = true;
    } else if (flag == "--chrome-trace") {
      opt.chrome_trace_path = require_value();
      opt.config.trace_enabled = true;
    } else if (flag == "--shift") {
      // T:DOMAIN:FACTOR
      const std::string& v = require_value();
      const std::size_t c1 = v.find(':');
      const std::size_t c2 = c1 == std::string::npos ? std::string::npos : v.find(':', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) {
        throw std::invalid_argument("--shift: expected T:DOMAIN:FACTOR, got '" + v + "'");
      }
      workload::RateShift shift;
      shift.at_sec = parse_double(flag, v.substr(0, c1));
      shift.domain = static_cast<int>(parse_long(flag, v.substr(c1 + 1, c2 - c1 - 1)));
      shift.rate_factor = parse_double(flag, v.substr(c2 + 1));
      opt.config.rate_shifts.push_back(shift);
    } else if (flag == "--csv") {
      opt.csv = true;
    } else if (flag == "--json") {
      opt.json = true;
    } else if (flag == "--cdf") {
      opt.show_cdf = true;
    } else {
      throw std::invalid_argument("unknown flag: '" + arg + "' (see --help text)");
    }
  }

  opt.config.validate();
  return opt;
}

std::string cli_usage() {
  return "usage: run_scenario [--flag=value ...]\n"
         "  scenario:   --config=FILE (key = value lines, keys = flag names;\n"
         "              later command-line flags override the file)\n"
         "  workload:   --domains=K --clients=N --think=SEC --zipf-theta=T --uniform\n"
         "              --error=PERCENT\n"
         "  site:       --heterogeneity=0|20|35|50|65 | --relative=1,0.8,... \n"
         "              --total-capacity=HITS_PER_SEC\n"
         "  algorithm:  --policy=NAME (RR, RR2, DAL, MRL, PRR[2]-TTL/1|2|K,\n"
         "              DRR[2]-TTL/S_1|S_2|S_K) --ttl=SEC --no-calibration\n"
         "              --alarm-threshold=U --no-alarm\n"
         "  estimation: --measured --estimator=ewma|window --cold-start\n"
         "  resolvers:  --min-ttl=SEC --ns-per-domain=M --client-cache\n"
         "  geography:  --geo-regions=R --geo-intra=SEC --geo-inter=SEC\n"
         "  redirection: --redirect --redirect-wait=SEC --redirect-delay=SEC\n"
         "              (enables network RTTs; policy GEO routes by proximity)\n"
         "  dynamics:   --shift=T:DOMAIN:FACTOR (repeatable flash crowd)\n"
         "              --outage=START:DURATION:SERVER (repeatable silent stall)\n"
         "              --queue-alarm=PAGES (alarm on backlog, detects outages)\n"
         "  faults:     --faults=FILE (crash/degrade/pause/dns-outage lines)\n"
         "              --crash=START:DURATION:SERVER (drop queue, reject)\n"
         "              --degrade=START:DURATION:SERVER:FACTOR (scale C_i)\n"
         "              --dns-outage=START:DURATION (authoritative DNS down;\n"
         "              NSs back off and serve stale) --retry-delay=SEC\n"
         "  run:        --duration=SEC --warmup=SEC --seed=N --replications=R\n"
         "              --jobs=J (parallel workers; default ADATTL_JOBS or all\n"
         "              cores; 1 = serial; output is identical either way)\n"
         "  output:     --csv --json --cdf --trace=FILE.csv --decisions=FILE.csv\n"
         "              --metrics (JSON gains a \"metrics\" object)\n"
         "              --chrome-trace=FILE.json (event timeline for\n"
         "              chrome://tracing / Perfetto)\n";
}

}  // namespace adattl::experiment
