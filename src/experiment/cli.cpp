#include "experiment/cli.h"

#include "experiment/param_registry.h"

namespace adattl::experiment {

// Every knob — name, parsing, precedence, validation, help text — lives in
// the parameter registry (param_registry.cpp). This file only adapts the
// registry to the historical parse_cli()/cli_usage() entry points.

CliOptions parse_cli(const std::vector<std::string>& args) {
  return ParamRegistry::instance().resolve(args).options;
}

std::string cli_usage() { return ParamRegistry::instance().usage(); }

}  // namespace adattl::experiment
