#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include <vector>

#include "fault/fault_schedule.h"
#include "web/cluster.h"
#include "workload/client.h"
#include "workload/think_time_model.h"
#include "workload/trace.h"

namespace adattl::experiment {

/// One injected server failure: the server silently stops serving at
/// `start_sec` and resumes `duration_sec` later. Queued work survives the
/// outage (a stall, not a crash-with-data-loss).
struct ServerOutage {
  double start_sec = 0.0;
  double duration_sec = 0.0;
  int server = 0;
};

/// Which hidden-load estimator the DNS runs when not in oracle mode.
enum class EstimatorKind {
  kEwma,           ///< exponentially-weighted moving average (default)
  kSlidingWindow,  ///< plain moving average over the last N windows
  kHoltWinters,    ///< double-exponential level + trend, one-step forecast
  kAr,             ///< AR(p) least-squares one-step prediction
};

/// Full description of one simulation run — the paper's Table 1 plus the
/// knobs its sensitivity studies turn. Defaults reproduce the paper's
/// default scenario (7 servers, 20% heterogeneity, 20 domains, 500
/// clients, 2/3 average utilization, 5-hour run).
struct SimulationConfig {
  // ---- Web site ----
  web::ClusterSpec cluster = web::table2_cluster(20);

  // ---- Workload ----
  int num_domains = 20;
  int total_clients = 500;
  double mean_think_sec = 15.0;
  double zipf_theta = 1.0;
  /// Uniform client-per-domain distribution: the paper's "Ideal" scenario.
  bool uniform_clients = false;
  /// §5.2 estimation-error study: grow the busiest domain's rate by this
  /// percentage (others shrink to keep the total) while the DNS keeps the
  /// unperturbed weights.
  double rate_perturbation_percent = 0.0;
  workload::SessionProfile session;
  /// Scripted flash crowds: at each shift's time, the domain's request
  /// rate is multiplied by its factor (composing). The DNS is *not* told —
  /// only the online estimator can notice.
  std::vector<workload::RateShift> rate_shifts;
  /// Trace-driven workload: each point SETS a domain's rate multiplier
  /// outright (absolute, non-composing — see workload/trace.h). Loaded
  /// from --workload-trace=FILE CSVs and/or inline --trace-point specs;
  /// like rate_shifts the DNS is not told, and in sharded runs each event
  /// fires only in its domain's owning shard.
  std::vector<workload::TraceEvent> trace_events;

  // ---- DNS scheduling algorithm ----
  /// Name per core::parse_policy_name, e.g. "DRR2-TTL/S_K".
  std::string policy = "RR";
  double reference_ttl_sec = 240.0;
  /// γ; 0 means "use the paper default 1/K".
  double class_threshold = 0.0;
  /// Address-rate fairness calibration (§4.1); off only in ablations.
  bool calibrate_ttl = true;

  // ---- Feedback / monitoring ----
  double alarm_threshold = 0.9;
  bool alarm_enabled = true;
  /// Also alarm a server whose queue exceeds this many pages (0 = the
  /// paper's utilization-only feedback). Detects silent outages.
  std::size_t alarm_queue_threshold = 0;
  double monitor_interval_sec = 8.0;

  // ---- Failure injection ----
  /// Legacy silent stalls (--outage). Kept distinct from `faults` for
  /// backward compatibility; the Site merges them into the fault schedule
  /// as pause windows.
  std::vector<ServerOutage> outages;
  /// Scenario-driven fault plan: crashes, degradations, pauses and
  /// authoritative-DNS outages (--faults=FILE or inline flags). An empty
  /// schedule is bit-identical to no fault layer at all.
  fault::FaultSchedule faults;
  /// Client pause before retrying a failed page or resolution.
  double client_retry_delay_sec = 1.0;
  /// NS upstream retry backoff during DNS outages (capped exponential).
  double ns_retry_initial_backoff_sec = 1.0;
  double ns_retry_max_backoff_sec = 64.0;

  // ---- Server-side redirection (extension; the authors' follow-up
  // "second-level dispatching" mechanism) ----
  bool redirect_enabled = false;
  /// Redirect when the target's estimated queue wait exceeds this.
  double redirect_max_wait_sec = 2.0;
  /// Extra latency per redirected request (the additional hop).
  double redirect_delay_sec = 0.1;

  // ---- Geography (extension; 0 regions = the paper's latency-free model) ----
  /// Number of regions; domains/servers are assigned round-robin.
  int geo_regions = 0;
  /// Intra-/inter-region round-trip times (seconds).
  double geo_intra_rtt_sec = 0.02;
  double geo_inter_rtt_sec = 0.15;

  // ---- Elastic pool / autoscaling (extension) ----
  /// Watermark autoscaler on the monitor tick: sustained mean in-pool
  /// utilization above/below the watermarks adds/parks one server per
  /// action (see core::Autoscaler). Scripted scale-up/scale-down/resize
  /// fault directives work independently of this switch.
  bool autoscale_enabled = false;
  double autoscale_high_watermark = 0.75;
  double autoscale_low_watermark = 0.30;
  /// Consecutive out-of-band monitor ticks required before an action.
  int autoscale_hysteresis_ticks = 3;
  /// Scale-down floor: the pool never shrinks below this many servers.
  int autoscale_min_servers = 1;

  // ---- Hidden-load estimation ----
  /// true: DNS knows the (unperturbed) weights exactly — the paper's
  /// controlled setting. false: weights come from the online EWMA
  /// estimator fed by server reports.
  bool oracle_weights = true;
  EstimatorKind estimator_kind = EstimatorKind::kEwma;
  double estimator_smoothing = 0.3;
  /// Window count for the sliding-window estimator.
  int estimator_window_count = 8;
  /// Trend smoothing (Holt-Winters beta); 0 degrades to plain EWMA.
  double estimator_trend = 0.2;
  /// Autoregressive order p for the AR estimator.
  int estimator_ar_order = 3;
  /// Collect server counters every this many monitor ticks (4 × 8 s = 32 s).
  int estimator_collect_every_ticks = 4;
  /// Start the measured estimator from uniform weights instead of the true
  /// ones (cold start; used by the flash-crowd example).
  bool estimator_cold_start = false;

  // ---- Name servers / client caches ----
  /// Non-cooperative NS minimum accepted TTL (§5.2); 0 = fully cooperative.
  double ns_min_ttl_sec = 0.0;
  /// Name servers per domain (paper §2: domains have "a (set of) local
  /// name server(s)"). Each domain's clients are spread evenly over its
  /// NSs; more NSs = more independent caches = more DNS control.
  int ns_per_domain = 1;
  /// Per-client address caches on top of the NS caches (paper §1 notes
  /// clients cache too). Off by default: the paper's model resolves once
  /// per session through the NS; the ablation bench studies the effect.
  bool client_cache_enabled = false;

  // ---- Live DNS daemon (tools/adattl_dnsd; inert for simulations) ----
  /// UDP port the sharded daemon binds (0 = ephemeral, reported at start).
  int dnsd_port = 5353;
  /// Worker shards, each with its own SO_REUSEPORT socket + epoll loop and
  /// its own scheduler state (1 = bit-compatible with the serial scheduler).
  int dnsd_shards = 1;
  /// recvmmsg/sendmmsg batch size; 1 = the legacy recvmsg/sendto path.
  int dnsd_batch = 32;
  /// Derive the hidden-load domain key from EDNS0 Client-Subnet when the
  /// resolver forwards one (source-address hash fallback otherwise).
  bool dnsd_ecs = true;

  // ---- Observability (off by default: zero steady-state cost) ----
  /// Register and update the run-wide metrics registry; the RunResult then
  /// carries a MetricsSnapshot that report serialization includes.
  bool metrics_enabled = false;
  /// Record typed trace events (decisions, alarm flips, NS refreshes,
  /// pause/resume, estimator updates) into a bounded ring buffer.
  bool trace_enabled = false;
  /// Ring-buffer capacity in records; oldest records are overwritten.
  std::size_t trace_capacity = 65536;

  // ---- Run control ----
  double warmup_sec = 600.0;
  double duration_sec = 18000.0;  ///< measured period after warm-up (5 h)
  std::uint64_t seed = 42;

  // ---- Scale-out (million-client runs) ----
  /// Multiplies the client population AND the site capacity together, so
  /// per-client load (and therefore utilization) is invariant: --scale=2000
  /// turns the paper's 500-client default into a 1M-client site without
  /// re-deriving Table 2. Applied once at Site construction via scaled().
  double scale = 1.0;
  /// Partition the domains (and their clients, name servers and estimator
  /// state) across a pool of per-shard simulators that synchronize at
  /// every monitor tick — the parallel-in-one-run mode (DESIGN.md §16).
  /// Results are bit-identical across repeated runs at a fixed seed and
  /// shard count, whatever ADATTL_JOBS is.
  bool shard_domains = false;
  /// Shard pool size for shard_domains; 0 = one shard per ADATTL_JOBS
  /// worker. Clamped to num_domains (a shard needs at least one domain).
  int shard_count = 0;

  double effective_class_threshold() const {
    return class_threshold > 0.0 ? class_threshold : 1.0 / num_domains;
  }

  /// The configuration a Site actually runs: `scale` folded into
  /// total_clients and cluster capacity (then reset to 1). Identity when
  /// scale == 1. Throws if the scaled population overflows int.
  SimulationConfig scaled() const;

  void validate() const;
};

}  // namespace adattl::experiment
