#include "experiment/report.h"

#include <cstdio>
#include <stdexcept>

namespace adattl::experiment {

TableReport::TableReport(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TableReport: no columns");
}

void TableReport::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TableReport: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TableReport::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TableReport::print(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                  c + 1 < row.size() ? "  " : "\n");
    }
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  std::printf("%s\n", std::string(total > 2 ? total - 2 : total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string metrics_to_json(const obs::MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  char buf[64];
  for (const obs::MetricsSnapshot::Metric& m : snapshot.metrics) {
    if (!first) out += ",";
    first = false;
    out += "\"" + m.name + "\":{\"kind\":\"";
    out += obs::metric_kind_name(m.kind);
    out += "\"";
    if (m.kind == obs::MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf), ",\"count\":%llu,\"sum\":%.6g,\"upper\":%.6g",
                    static_cast<unsigned long long>(m.count), m.sum, m.upper);
      out += buf;
      out += ",\"bins\":[";
      for (std::size_t i = 0; i < m.bins.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%llu%s", static_cast<unsigned long long>(m.bins[i]),
                      i + 1 < m.bins.size() ? "," : "");
        out += buf;
      }
      out += "]";
    } else {
      std::snprintf(buf, sizeof(buf), ",\"value\":%.17g", m.value);
      out += buf;
    }
    out += "}";
  }
  out += "}";
  return out;
}

void TableReport::print_csv() const {
  auto csv_row = [](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", row[c].c_str(), c + 1 < row.size() ? "," : "\n");
    }
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
}

}  // namespace adattl::experiment
