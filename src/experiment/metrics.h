#pragma once

#include <vector>

#include "sim/stats.h"
#include "sim/time.h"

namespace adattl::experiment {

/// Collects the paper's headline metric: the distribution of the *maximum*
/// utilization across the servers, sampled at every monitor tick after the
/// warm-up. The CDF value at u is the fraction of time all servers stayed
/// below utilization u — the "cumulative frequency of Max Utilization" of
/// Figures 1–2; Prob(maxUtil < 0.98) is the sensitivity-figure metric.
class MaxUtilizationTracker {
 public:
  /// `batch_ticks` groups consecutive samples for the within-run batch-
  /// means confidence interval (75 ticks x 8 s = 10-minute batches).
  MaxUtilizationTracker(int num_servers, sim::SimTime warmup_end, int cdf_bins = 500,
                        std::size_t batch_ticks = 75);

  /// MonitorHub observer entry point. Samples with now < warmup_end are
  /// discarded; the sample at exactly warmup_end is kept (the measured
  /// period is closed on the left — the convention for all collectors).
  void observe(sim::SimTime now, const std::vector<double>& utilizations);

  const sim::EmpiricalCdf& cdf() const { return cdf_; }
  double prob_below(double u) const { return cdf_.prob_below(u); }

  /// Per-server mean utilization over the measured period.
  std::vector<double> mean_utilizations() const;
  /// Mean of the per-tick max utilization.
  double mean_max_utilization() const { return max_stat_.mean(); }
  /// Mean utilization aggregated over servers (≈ offered load / capacity).
  double mean_aggregate_utilization() const;

  std::uint64_t samples() const { return cdf_.count(); }

  /// Within-run batch-means view of the max-utilization series; use
  /// relative_halfwidth() to reproduce the paper's "95% CI within 4% of
  /// the mean" check from one run.
  const sim::BatchMeans& batch_means() const { return batches_; }

 private:
  sim::SimTime warmup_end_;
  sim::EmpiricalCdf cdf_;
  sim::RunningStat max_stat_;
  sim::BatchMeans batches_;
  std::vector<sim::RunningStat> per_server_;
};

}  // namespace adattl::experiment
