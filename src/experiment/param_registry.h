#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "experiment/cli.h"

namespace adattl::experiment {

/// How a knob's textual value is parsed and serialized.
enum class ParamKind {
  kBool,        ///< bare flag, =true/=false, or --no-X negation
  kInt,         ///< strict strtoll (no precision loss above 2^53)
  kUint,        ///< strict strtoull (seeds, capacities)
  kDouble,      ///< strict strtod
  kDoubleList,  ///< comma-separated doubles (relative capacities)
  kString,      ///< free-form or enumerated text (policy, estimator)
  kSpecList,    ///< repeatable colon-packed specs (shift, crash, ...)
};

/// Which part of an invocation a knob describes. Simulation and run knobs
/// accept environment overrides and appear in --dump-config / config JSON;
/// output knobs (paths, format switches) are CLI/scenario-only.
enum class ParamScope { kSim, kRun, kOutput };

/// Where a knob's resolved value came from. Layers apply in this order;
/// a later layer overwrites an earlier one (defaults < scenario < env <
/// CLI). kCode marks values set programmatically (benches, tests) when
/// provenance is inferred rather than recorded.
enum class ParamLayer { kDefault, kCode, kScenario, kEnv, kCli };

const char* param_layer_name(ParamLayer layer);

/// One knob: the single place its name, type, documentation, environment
/// binding, parser, serializer, and validation live. Every configuration
/// surface (CLI flags, ADATTL_* env, scenario files, --help, CONFIG.md,
/// --dump-config, runner JSON) is generated from this table.
struct ParamSpec {
  std::string name;   ///< canonical key: CLI flag without "--", scenario key
  ParamKind kind = ParamKind::kString;
  ParamScope scope = ParamScope::kSim;
  std::string group;  ///< help/doc grouping, in registration order
  std::string hint;   ///< value placeholder for help text, e.g. "SEC"
  std::string doc;    ///< one-line description
  std::string env;    ///< environment override variable ("" = none)
  bool repeatable = false;
  /// Included in --dump-config / config JSON. Off for knobs another knob
  /// already covers in resolved form (heterogeneity -> relative, faults ->
  /// expanded windows) and for all output knobs.
  bool in_dump = true;
  /// Included in the provenance JSON embedded in run manifests. Off for
  /// knobs that cannot change results — execution parallelism and output
  /// destinations — so report JSON stays bit-identical across --jobs.
  bool in_manifest = true;
  /// Parses `value` and assigns the target field(s); throws
  /// std::invalid_argument (without a source prefix — the pipeline adds
  /// "--flag:" / "ADATTL_X:" context).
  std::function<void(CliOptions&, const std::string&)> set;
  /// Canonical textual value of the knob's current state (scalar knobs).
  std::function<std::string(const CliOptions&)> get;
  /// One entry per accumulated element (repeatable knobs).
  std::function<std::vector<std::string>(const CliOptions&)> get_list;
  /// Range/consistency check run by validate(); throws with the same
  /// message from every entry point. Null = no per-knob constraint.
  std::function<void(const CliOptions&)> check;
};

/// Per-knob record of the layer that last wrote it and the raw value text
/// it received. Knobs still at their default carry no entry.
struct ParamProvenance {
  ParamLayer layer = ParamLayer::kDefault;
  std::string value;
};

using ProvenanceMap = std::map<std::string, ParamProvenance>;

/// A fully resolved invocation: the options plus where every knob came from.
struct ConfigResolution {
  CliOptions options;
  ProvenanceMap provenance;
};

/// The knob table and everything derived from it. One immutable process-
/// wide instance; adding a knob means adding one registration in
/// param_registry.cpp and nothing anywhere else.
class ParamRegistry {
 public:
  static const ParamRegistry& instance();

  const std::vector<ParamSpec>& specs() const { return specs_; }
  const ParamSpec* find(const std::string& name) const;

  /// Closest registered name by edit distance (including --no-X forms and
  /// "config"); empty string when nothing is plausibly close.
  std::string suggest(const std::string& name) const;

  /// The precedence pipeline: defaults, then every --config=FILE scenario
  /// (wherever it appears on the line), then ADATTL_* environment
  /// overrides, then the remaining CLI flags in order. Validates the
  /// result; throws std::invalid_argument naming the offending source.
  ConfigResolution resolve(const std::vector<std::string>& cli_args) const;

  /// Environment-free resolution: defaults plus the given "--key=value"
  /// flags at the CLI layer, validated exactly like a user invocation but
  /// with no ADATTL_* interference and no scenario files. This is the
  /// repro hook the property-test harness builds on: a generated config is
  /// a flag list, and dump_scenario() of the result is its repro scenario.
  ConfigResolution resolve_flags(const std::vector<std::string>& flags) const;

  /// Applies one "--key[=value]" argument at the given layer.
  void apply_arg(ConfigResolution& r, const std::string& arg, ParamLayer layer) const;

  /// Runs every spec's check plus the cross-knob constraints. The same
  /// validation SimulationConfig::validate() performs.
  void validate(const CliOptions& opt) const;

  /// Scenario-file text reproducing the fully resolved run: every dumped
  /// knob as `key = value` with its provenance layer as a trailing
  /// comment. Feeding it back through --config yields a bit-identical
  /// RunResult (in a clean environment).
  std::string dump_scenario(const ConfigResolution& r) const;

  /// Resolved configuration as a JSON object keyed by knob name.
  std::string config_json(const CliOptions& opt) const;

  /// Provenance as a JSON object: {"knob":{"layer":"cli","value":"..."}}.
  /// Knobs still at their default are omitted.
  std::string provenance_json(const ProvenanceMap& provenance) const;

  /// Provenance for options built programmatically (benches, tests):
  /// every knob whose serialized value differs from the default is
  /// attributed to the kCode layer.
  ProvenanceMap infer_provenance(const CliOptions& opt) const;

  /// Grouped --help text.
  std::string usage() const;

  /// docs/CONFIG.md: a markdown knob reference generated from the table.
  std::string params_markdown() const;

 private:
  ParamRegistry();
  void add(ParamSpec spec);

  std::vector<ParamSpec> specs_;
  std::map<std::string, std::size_t> index_;
};

/// Convenience wrapper over ParamRegistry::instance().resolve().
ConfigResolution resolve_config(const std::vector<std::string>& args);

}  // namespace adattl::experiment
