#pragma once

// Strict parsing of the ADATTL_* environment defaults used by the benches
// and the parallel executor (ADATTL_REPLICATIONS, ADATTL_DURATION_SEC,
// ADATTL_JOBS). Malformed values are rejected with a warning on stderr and
// fall back to the default instead of silently becoming 0 or a
// half-parsed prefix.
//
// Note: for CLI-driven runs (parse_cli / resolve_config), every knob's
// ADATTL_* override is resolved through the parameter registry
// (param_registry.cpp) as an explicit precedence layer with provenance —
// these helpers only back the programmatic bench defaults, where a
// malformed value should warn rather than abort.

namespace adattl::experiment {

/// Strictly parses `text` as a decimal number. Fails (returns false) on
/// null, empty, non-numeric, trailing junk ("12abc"), infinities and NaN.
/// Leading whitespace is accepted, trailing whitespace is not.
bool parse_env_number(const char* text, double& out);

/// Reads environment variable `name`. Unset or empty: `fallback`.
/// Malformed: warning on stderr, then `fallback`. Valid: the value
/// clamped to [lo, hi].
double env_double(const char* name, double fallback, double lo, double hi);

/// Same for integral knobs; values with a fractional part count as
/// malformed rather than being truncated.
int env_int(const char* name, int fallback, int lo, int hi);

}  // namespace adattl::experiment
