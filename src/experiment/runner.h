#pragma once

#include <functional>
#include <string>
#include <vector>

#include "experiment/site.h"
#include "sim/stats.h"

namespace adattl::experiment {

/// Result of several independent replications of the same configuration
/// (different seeds).
struct ReplicatedResult {
  std::vector<RunResult> runs;

  /// Mean + 95% CI of a scalar extracted from each run.
  sim::MeanCi ci(const std::function<double(const RunResult&)>& f) const;

  sim::MeanCi prob_below(double u) const;
  sim::MeanCi aggregate_utilization() const;
  sim::MeanCi address_request_rate() const;

  /// Pointwise-averaged cumulative curve over the CDF bin boundaries:
  /// first = max-utilization boundary, second = mean P(maxUtil < boundary).
  std::vector<std::pair<double, double>> mean_cdf_curve(int points = 50) const;
};

/// Runs `replications` independent runs of `config` with seeds derived
/// from config.seed (seed, seed+1, ...).
ReplicatedResult run_replications(SimulationConfig config, int replications);

/// Convenience used all over the benches: run one policy (by name) with a
/// tweak applied to the base config.
ReplicatedResult run_policy(SimulationConfig base, const std::string& policy, int replications);

/// Serializes a scenario's headline results as a JSON object (policy,
/// site shape, P(maxUtil < x) with CIs, utilization, address-rate, DNS
/// control, response times, per-server utilizations). For dashboards and
/// scripted sweeps; the schema is flat and stable.
std::string to_json(const SimulationConfig& config, const ReplicatedResult& result);

/// Number of replications the figure benches use. Default 3; override via
/// environment variable ADATTL_REPLICATIONS (clamped to [1, 30]).
int default_replications();

/// Measured-period length for figure benches, seconds. Default: the
/// paper's 5 simulated hours; override via ADATTL_DURATION_SEC.
double default_duration_sec();

}  // namespace adattl::experiment
