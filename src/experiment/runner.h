#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "experiment/parallel_executor.h"
#include "experiment/param_registry.h"
#include "experiment/site.h"
#include "sim/stats.h"

namespace adattl::experiment {

/// Result of several independent replications of the same configuration
/// (different seeds).
struct ReplicatedResult {
  std::vector<RunResult> runs;

  /// Mean + 95% CI of a scalar extracted from each run.
  sim::MeanCi ci(const std::function<double(const RunResult&)>& f) const;

  sim::MeanCi prob_below(double u) const;
  sim::MeanCi aggregate_utilization() const;
  sim::MeanCi address_request_rate() const;

  /// Pointwise-averaged cumulative curve over the CDF bin boundaries:
  /// first = max-utilization boundary, second = mean P(maxUtil < boundary).
  /// `points` must be >= 1; an empty `runs` yields an all-zero curve.
  std::vector<std::pair<double, double>> mean_cdf_curve(int points = 50) const;
};

/// Progress report delivered as each sweep point completes (all of its
/// replications finished). Deliveries are serialized — at most one
/// callback runs at a time, in point-completion order.
struct SweepPointDone {
  std::size_t index = 0;      ///< point index in add() order
  std::size_t completed = 0;  ///< points completed so far, this one included
  std::size_t total = 0;      ///< points in the sweep
  std::string label;
  double cpu_seconds = 0.0;      ///< summed wall-clock of the point's replications
  double elapsed_seconds = 0.0;  ///< wall-clock since Sweep::run() started
};

/// What a Sweep::run() produced: one ReplicatedResult per point, in add()
/// order — positionally identical to calling run_replications once per
/// point in a serial loop — plus per-point and whole-sweep timing.
struct SweepResult {
  std::vector<ReplicatedResult> points;
  /// Summed replication wall-clock per point (the serial-equivalent cost).
  std::vector<double> point_cpu_seconds;
  /// Point labels in add() order (empty string when none was given).
  std::vector<std::string> point_labels;
  /// Fully resolved configuration of each point as a JSON object keyed by
  /// registry knob name (ParamRegistry::config_json), in add() order.
  std::vector<std::string> point_config_json;
  /// Per-point provenance JSON (knobs differing from the registry
  /// defaults, attributed to the code layer), in add() order.
  std::vector<std::string> point_provenance_json;
  double wall_seconds = 0.0;
  int jobs = 1;

  /// Machine-readable sweep manifest: jobs, wall seconds, and per point
  /// the label, replication count, cpu seconds, the summed wall-clock
  /// phase breakdown (setup/warmup/measurement/collect) of its runs, and
  /// the point's fully resolved config + provenance from the parameter
  /// registry.
  std::string manifest_json() const;
};

/// A batch of independent simulation points (config × replications) that
/// runs as one unit across a ParallelExecutor. Every replication of every
/// point is an independent task, so a sweep of 8 points × 3 replications
/// keeps 24-way parallelism available instead of 3-way.
///
/// Determinism guarantee: replication i of a point runs with seed
/// `config.seed + i` — exactly the serial derivation — and results land in
/// pre-assigned slots, so SweepResult is bit-identical whatever the worker
/// count or scheduling order.
class Sweep {
 public:
  using ProgressFn = std::function<void(const SweepPointDone&)>;

  /// Queues `replications` runs of `config` (seeds config.seed + i).
  /// Returns the point's index into SweepResult::points. Throws
  /// std::invalid_argument for replications < 1.
  std::size_t add(SimulationConfig config, int replications, std::string label = "");

  /// add() with the policy overridden (the run_policy convenience); the
  /// label defaults to the policy name.
  std::size_t add_policy(SimulationConfig base, const std::string& policy,
                         int replications, std::string label = "");

  std::size_t size() const { return points_.size(); }

  /// Fans all queued replications across `executor`. The progress callback
  /// (optional) fires once per completed point, serialized.
  SweepResult run(ParallelExecutor& executor, ProgressFn on_point_done = nullptr) const;

  /// run() on a fresh executor sized by ADATTL_JOBS (1 = legacy serial).
  SweepResult run(ProgressFn on_point_done = nullptr) const;

 private:
  struct Point {
    SimulationConfig config;
    int replications = 0;
    std::string label;
  };
  std::vector<Point> points_;
};

/// Runs `replications` independent runs of `config` with seeds derived
/// from config.seed (seed, seed+1, ...). Honors ADATTL_JOBS: replications
/// run in parallel, with output bit-identical to the serial path.
ReplicatedResult run_replications(SimulationConfig config, int replications);

/// Convenience used all over the benches: run one policy (by name) with a
/// tweak applied to the base config.
ReplicatedResult run_policy(SimulationConfig base, const std::string& policy, int replications);

/// Serializes a scenario's headline results as a JSON object (policy,
/// site shape, P(maxUtil < x) with CIs, utilization, address-rate, DNS
/// control, response times, per-server utilizations), plus a "config"
/// object with the fully resolved knob values from the parameter registry
/// and a "provenance" object recording which layer set each non-default
/// knob. For dashboards and scripted sweeps; the schema is flat and
/// stable. Without an explicit provenance map, non-default knobs are
/// attributed to the code layer (ParamRegistry::infer_provenance).
std::string to_json(const SimulationConfig& config, const ReplicatedResult& result);
std::string to_json(const SimulationConfig& config, const ReplicatedResult& result,
                    const ProvenanceMap& provenance);

/// JSON string escaping as used by to_json: quotes, backslashes and all
/// control characters (RFC 8259). Exposed for tests and tooling.
std::string json_escape(const std::string& s);

/// Number of replications the figure benches use. Default 3; override via
/// environment variable ADATTL_REPLICATIONS (clamped to [1, 30]).
int default_replications();

/// Measured-period length for figure benches, seconds. Default: the
/// paper's 5 simulated hours; override via ADATTL_DURATION_SEC.
double default_duration_sec();

}  // namespace adattl::experiment
