#include "experiment/decision_log.h"

#include <algorithm>
#include <cstdio>

namespace adattl::experiment {

DecisionLog::DecisionLog(std::size_t capacity) : capacity_(capacity) {}

void DecisionLog::attach(sim::Simulator& sim, core::DnsScheduler& scheduler) {
  scheduler.set_decision_hook(
      [this, &sim](web::DomainId domain, const core::Decision& decision) {
        record(sim.now(), domain, decision);
      });
}

void DecisionLog::record(sim::SimTime now, web::DomainId domain,
                         const core::Decision& decision) {
  ++total_;
  const DecisionEntry entry{now, domain, decision.server, decision.ttl_sec};
  if (capacity_ == 0 || entries_.size() < capacity_) {
    entries_.push_back(entry);
    return;
  }
  // Ring overwrite of the oldest entry.
  entries_[head_] = entry;
  head_ = (head_ + 1) % capacity_;
}

std::string DecisionLog::to_csv() const {
  std::string out = "time,domain,server,ttl\n";
  char buf[96];
  // Emit in chronological order: oldest retained entry first.
  const std::size_t n = entries_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (capacity_ != 0 && n == capacity_) ? (head_ + i) % n : i;
    const DecisionEntry& e = entries_[idx];
    std::snprintf(buf, sizeof(buf), "%.3f,%d,%d,%.3f\n", e.time, e.domain, e.server,
                  e.ttl_sec);
    out += buf;
  }
  return out;
}

std::vector<std::uint64_t> DecisionLog::per_server_counts() const {
  int max_server = -1;
  for (const DecisionEntry& e : entries_) max_server = std::max(max_server, e.server);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(max_server + 1), 0);
  for (const DecisionEntry& e : entries_) counts[static_cast<std::size_t>(e.server)]++;
  return counts;
}

}  // namespace adattl::experiment
