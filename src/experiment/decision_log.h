#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "sim/simulator.h"

namespace adattl::experiment {

/// One authoritative DNS decision, stamped with simulated time.
struct DecisionEntry {
  sim::SimTime time = 0.0;
  web::DomainId domain = 0;
  web::ServerId server = 0;
  double ttl_sec = 0.0;
};

/// Bounded log of the DNS's address-mapping decisions — the complete
/// control trace of a run (there are only a few hundred decisions per
/// simulated hour, so full capture is cheap). Useful for debugging a
/// policy's behaviour and for auditing, e.g., which server a hot domain
/// was pinned to when an overload window started.
class DecisionLog {
 public:
  /// Keeps at most `capacity` entries; older entries are discarded
  /// (the tail of the run is usually what matters). 0 = unbounded.
  explicit DecisionLog(std::size_t capacity = 0);

  /// Hooks this log into a scheduler, stamping entries with `sim`'s clock.
  /// Replaces any previously installed hook on that scheduler.
  void attach(sim::Simulator& sim, core::DnsScheduler& scheduler);

  /// Direct feed (tests, custom wiring).
  void record(sim::SimTime now, web::DomainId domain, const core::Decision& decision);

  const std::vector<DecisionEntry>& entries() const { return entries_; }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t discarded() const { return total_ - entries_.size(); }

  /// CSV: "time,domain,server,ttl" rows in record order.
  std::string to_csv() const;

  /// Decisions per server over the retained entries (index == ServerId;
  /// sized to the largest server id seen + 1).
  std::vector<std::uint64_t> per_server_counts() const;

 private:
  std::size_t capacity_;
  std::vector<DecisionEntry> entries_;
  std::size_t head_ = 0;  // ring index when capacity_ > 0 and full
  std::uint64_t total_ = 0;
};

}  // namespace adattl::experiment
