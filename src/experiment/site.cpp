#include "experiment/site.h"

#include <numeric>
#include <stdexcept>

namespace adattl::experiment {

Site::Site(const SimulationConfig& config)
    : config_(config.scaled()), rng_(config_.seed) {
  obs::Stopwatch setup_watch;
  config_.validate();
  if (config_.shard_domains) {
    throw std::invalid_argument("Site: shard_domains configs require ShardedSite");
  }

  // Observability backends exist only when asked for; every consumer takes
  // a nullable pointer, so the disabled path costs a handful of null binds.
  if (config_.metrics_enabled) metrics_registry_ = std::make_unique<obs::MetricsRegistry>();
  if (config_.trace_enabled) {
    event_tracer_ = std::make_unique<obs::EventTracer>(config_.trace_capacity);
  }

  // Steady state holds roughly one in-flight event per client (think timer
  // or service leg) plus TTL expiries and the monitor tick; pre-sizing the
  // kernel keeps the whole run allocation-free inside the event loop.
  sim_.reserve(2 * static_cast<std::size_t>(config_.total_clients) + 64);

  // ---- Workload population ----
  const workload::DomainSet base =
      config_.uniform_clients
          ? workload::make_uniform_domains(config_.num_domains, config_.total_clients,
                                           config_.mean_think_sec)
          : workload::make_zipf_domains(config_.num_domains, config_.total_clients,
                                        config_.mean_think_sec, config_.zipf_theta);

  // Clients behave per the perturbed rates; the DNS keeps the unperturbed
  // weights — that gap is the paper's "estimation error".
  domains_ = base;
  if (config_.rate_perturbation_percent > 0.0) {
    workload::apply_rate_perturbation(domains_, config_.rate_perturbation_percent);
  }

  think_model_ = std::make_unique<workload::ThinkTimeModel>(domains_.mean_think_sec);
  // Scripted flash crowds fire as simulator events; the DNS only learns of
  // them through the estimator (if enabled).
  for (const workload::RateShift& shift : config_.rate_shifts) {
    sim_.at(shift.at_sec, sim::assert_inline([this, shift] {
              think_model_->scale_rate(shift.domain, shift.rate_factor);
            }));
  }
  // Trace replay rides the same mechanism with absolute multipliers.
  workload::schedule_trace(sim_, *think_model_, config_.trace_events);

  // ---- Servers ----
  cluster_ = std::make_unique<web::Cluster>(sim_, config_.cluster, config_.num_domains, rng_);

  // ---- Geography (optional) ----
  if (config_.geo_regions > 0) {
    geo_ = std::make_shared<const geo::GeoModel>(
        geo::GeoModel::regions(config_.num_domains, cluster_->size(), config_.geo_regions,
                               config_.geo_intra_rtt_sec, config_.geo_inter_rtt_sec));
  }

  // ---- Failure injection ----
  // Legacy --outage windows fold into the schedule as pauses, *before* the
  // scenario faults, so their events keep the insertion order (and thus
  // the same-timestamp FIFO ties) the old inline loop produced.
  fault::FaultSchedule schedule;
  for (const ServerOutage& outage : config_.outages) {
    schedule.pauses.push_back(
        fault::PauseWindow{outage.start_sec, outage.duration_sec, outage.server});
  }
  schedule.merge(config_.faults);
  fault_injector_ = std::make_unique<fault::FaultInjector>(sim_, *cluster_, schedule);

  // ---- Server-side dispatch (direct, or redirecting second level) ----
  if (config_.redirect_enabled) {
    dispatcher_ = std::make_unique<web::RedirectingDispatcher>(
        sim_, *cluster_, config_.redirect_max_wait_sec, config_.redirect_delay_sec,
        config_.session.mean_hits_per_page());
  } else {
    dispatcher_ = std::make_unique<web::DirectDispatcher>(*cluster_);
  }

  // ---- DNS scheduler ----
  alarms_ = std::make_unique<core::AlarmRegistry>(cluster_->size(), config_.alarm_threshold,
                                                  config_.alarm_enabled,
                                                  config_.alarm_queue_threshold);
  // Crash events mark servers down in the registry (hard health facts,
  // independent of the utilization alarms — works even with --no-alarm).
  fault_injector_->set_alarm_registry(alarms_.get());
  if (config_.autoscale_enabled) {
    core::Autoscaler::Config ac;
    ac.high_watermark = config_.autoscale_high_watermark;
    ac.low_watermark = config_.autoscale_low_watermark;
    ac.hysteresis_ticks = config_.autoscale_hysteresis_ticks;
    ac.min_servers = config_.autoscale_min_servers;
    autoscaler_ = std::make_unique<core::Autoscaler>(*alarms_, ac);
  }
  core::SchedulerFactoryConfig fc;
  fc.capacities = cluster_->capacities();
  fc.initial_weights =
      (config_.estimator_cold_start && !config_.oracle_weights)
          ? std::vector<double>(static_cast<std::size_t>(config_.num_domains), 1.0)
          : base.true_weights();
  fc.class_threshold = config_.effective_class_threshold();
  fc.reference_ttl = config_.reference_ttl_sec;
  fc.calibrate_ttl = config_.calibrate_ttl;
  fc.geo = geo_;
  bundle_ = core::make_scheduler(config_.policy, fc, *alarms_, sim_, rng_);

  // Cold-started estimators seed from the installed uniform prior instead
  // of anchoring on whatever the first measured window happens to hold.
  const bool seed_from_model = config_.estimator_cold_start && !config_.oracle_weights;
  switch (config_.estimator_kind) {
    case EstimatorKind::kEwma:
      estimator_ = std::make_unique<core::EwmaLoadEstimator>(
          *bundle_.domains, config_.estimator_smoothing, config_.oracle_weights,
          seed_from_model);
      break;
    case EstimatorKind::kSlidingWindow:
      estimator_ = std::make_unique<core::SlidingWindowLoadEstimator>(
          *bundle_.domains, config_.estimator_window_count, config_.oracle_weights);
      break;
    case EstimatorKind::kHoltWinters:
      estimator_ = std::make_unique<core::HoltWintersLoadEstimator>(
          *bundle_.domains, config_.estimator_smoothing, config_.estimator_trend,
          config_.oracle_weights, seed_from_model);
      break;
    case EstimatorKind::kAr:
      estimator_ = std::make_unique<core::ArLoadEstimator>(
          *bundle_.domains, config_.estimator_ar_order, config_.oracle_weights);
      break;
  }

  // ---- Name servers (ns_per_domain caches per domain) ----
  dnscache::NsTtlBehavior ns_behavior;
  ns_behavior.min_accepted_sec = config_.ns_min_ttl_sec;
  name_servers_.reserve(
      static_cast<std::size_t>(config_.num_domains) * config_.ns_per_domain);
  dnscache::NsRetryPolicy ns_retry;
  ns_retry.initial_backoff_sec = config_.ns_retry_initial_backoff_sec;
  ns_retry.max_backoff_sec = config_.ns_retry_max_backoff_sec;
  for (int d = 0; d < config_.num_domains; ++d) {
    for (int m = 0; m < config_.ns_per_domain; ++m) {
      name_servers_.push_back(
          std::make_unique<dnscache::NameServer>(sim_, d, *bundle_.scheduler, ns_behavior));
      // Only wire the outage calendar when windows exist: a NS without a
      // calendar skips the unreachable check entirely (fault-free runs
      // stay on the exact historical code path).
      if (!fault_injector_->dns_calendar().empty()) {
        name_servers_.back()->set_dns_outages(&fault_injector_->dns_calendar(), ns_retry);
      }
    }
  }

  // ---- Clients (one pooled allocation for the whole population) ----
  sim::RngStream client_seeds = rng_.split();
  sim::RngStream stagger = rng_.split();
  clients_ = std::make_unique<workload::ClientPool>(sim_, *dispatcher_, config_.session,
                                                    *think_model_, geo_.get(),
                                                    config_.client_retry_delay_sec);
  clients_->reserve(static_cast<std::size_t>(config_.total_clients));
  for (int d = 0; d < config_.num_domains; ++d) {
    const auto dd = static_cast<std::size_t>(d);
    for (int c = 0; c < domains_.clients[dd]; ++c) {
      // Clients spread round-robin over their domain's name servers.
      dnscache::NameServer& ns =
          *name_servers_[dd * static_cast<std::size_t>(config_.ns_per_domain) +
                         static_cast<std::size_t>(c % config_.ns_per_domain)];
      dnscache::Resolver* resolver = &ns;
      if (config_.client_cache_enabled) {
        client_caches_.push_back(std::make_unique<dnscache::ClientCache>(sim_, ns));
        resolver = client_caches_.back().get();
      }
      const std::size_t idx = clients_->add(*resolver, client_seeds.split());
      // Staggered arrival over one think time keeps t = 0 from stampeding
      // the DNS with simultaneous resolutions.
      clients_->start(idx, stagger.uniform(0.0, config_.mean_think_sec));
    }
  }

  // ---- Monitoring: alarms, metrics, estimation all on the 8 s clock ----
  monitor_ = std::make_unique<web::MonitorHub>(sim_, *cluster_, config_.monitor_interval_sec);
  tracker_ = std::make_unique<MaxUtilizationTracker>(cluster_->size(), config_.warmup_sec);

  monitor_->add_full_observer([this](sim::SimTime now, const std::vector<double>& util,
                                     const std::vector<std::size_t>& queues) {
    alarms_->observe_full(now, util, queues);
    if (autoscaler_) autoscaler_->observe(util);
    tracker_->observe(now, util);
    if (!config_.oracle_weights && ++ticks_ % config_.estimator_collect_every_ticks == 0) {
      collect_estimator_window(config_.monitor_interval_sec *
                               config_.estimator_collect_every_ticks);
    }
  });
  monitor_->start();

  // ---- Observability wiring (resolves all metric handles once, here) ----
  if (metrics_registry_ || event_tracer_) {
    obs::MetricsRegistry* reg = metrics_registry_.get();
    obs::EventTracer* tracer = event_tracer_.get();
    bundle_.scheduler->bind_observability(reg, tracer, &sim_);
    alarms_->bind_observability(reg, tracer);
    fault_injector_->bind_observability(reg, tracer);
    for (auto& ns : name_servers_) ns->bind_observability(reg, tracer);
    for (int s = 0; s < cluster_->size(); ++s) {
      cluster_->server(s).bind_observability(reg, tracer);
    }
  }
  setup_seconds_ = setup_watch.elapsed();
}

void Site::collect_estimator_window(double window_sec) {
  std::vector<std::uint64_t> total(static_cast<std::size_t>(config_.num_domains), 0);
  for (int s = 0; s < cluster_->size(); ++s) {
    const std::vector<std::uint64_t> part = cluster_->server(s).drain_domain_hits();
    for (std::size_t d = 0; d < total.size(); ++d) total[d] += part[d];
  }
  estimator_->observe(total, window_sec);
  if (event_tracer_) {
    event_tracer_->record(sim_.now(), obs::TraceKind::kEstimatorUpdate,
                          estimator_->windows_observed(), 0, window_sec);
  }
}

RunResult Site::run() {
  if (ran_) throw std::logic_error("Site::run: a Site is single-use");
  ran_ = true;

  // The split at the warm-up boundary is bit-identical to one run_until
  // call over the full horizon: events scheduled exactly at the boundary
  // execute in the first leg either way. It exists only to attribute wall
  // time to the warm-up vs measured phases.
  obs::Stopwatch phase_watch;
  const double horizon = config_.warmup_sec + config_.duration_sec;
  sim_.run_until(config_.warmup_sec);
  const double warmup_wall = phase_watch.lap();
  sim_.run_until(horizon);
  const double measurement_wall = phase_watch.lap();

  RunResult r;
  r.seed = config_.seed;
  r.max_util_cdf = tracker_->cdf();
  r.prob_below_090 = tracker_->prob_below(0.90);
  r.prob_below_098 = tracker_->prob_below(0.98);
  r.mean_max_utilization = tracker_->mean_max_utilization();
  r.max_util_ci_relative = tracker_->batch_means().relative_halfwidth();
  r.mean_server_util = tracker_->mean_utilizations();

  // Capacity-weighted aggregate utilization = offered load / total capacity.
  const std::vector<double>& cap = cluster_->capacities();
  const double total_cap = std::accumulate(cap.begin(), cap.end(), 0.0);
  for (std::size_t i = 0; i < cap.size(); ++i) {
    r.aggregate_utilization += r.mean_server_util[i] * cap[i] / total_cap;
  }

  const workload::ClientPool::Totals client_totals = clients_->totals();
  r.total_pages = client_totals.pages;
  r.mean_network_rtt_sec =
      r.total_pages ? client_totals.network_time_sec / static_cast<double>(r.total_pages)
                    : 0.0;
  for (int s = 0; s < cluster_->size(); ++s) r.total_hits += cluster_->server(s).hits_served();
  for (const auto& ns : name_servers_) {
    r.authoritative_queries += ns->authoritative_queries();
    r.ns_cache_hits += ns->cache_hits();
  }
  for (const auto& cc : client_caches_) r.client_cache_hits += cc->hits();
  r.address_request_rate = static_cast<double>(r.authoritative_queries) / horizon;
  r.dns_controlled_fraction =
      r.total_pages ? static_cast<double>(r.authoritative_queries) /
                          static_cast<double>(r.total_pages)
                    : 0.0;

  double response_weighted = 0.0;
  std::uint64_t response_pages = 0;
  for (int s = 0; s < cluster_->size(); ++s) {
    const sim::RunningStat& rt = cluster_->server(s).response_time();
    r.per_server_response_sec.push_back(rt.mean());
    response_weighted += rt.mean() * static_cast<double>(rt.count());
    response_pages += rt.count();
  }
  r.mean_page_response_sec =
      response_pages ? response_weighted / static_cast<double>(response_pages) : 0.0;

  sim::Histogram site_response(30.0, 3000);
  for (int s = 0; s < cluster_->size(); ++s) {
    site_response.merge(cluster_->server(s).response_histogram());
  }
  r.response_p50_sec = site_response.quantile(0.50);
  r.response_p95_sec = site_response.quantile(0.95);
  r.response_p99_sec = site_response.quantile(0.99);

  // ---- Latency as a first-class result ----
  const std::uint64_t decisions = bundle_.scheduler->decisions();
  if (geo_ && decisions > 0) {
    r.mean_assignment_rtt_sec =
        bundle_.scheduler->assignment_rtt_sum_sec() / static_cast<double>(decisions);
    const std::vector<double>& per_server = bundle_.scheduler->per_server_assignment_rtt_sec();
    const double rtt_total = bundle_.scheduler->assignment_rtt_sum_sec();
    r.rtt_weighted_assignment_share.resize(per_server.size(), 0.0);
    if (rtt_total > 0.0) {
      for (std::size_t i = 0; i < per_server.size(); ++i) {
        r.rtt_weighted_assignment_share[i] = per_server[i] / rtt_total;
      }
    }
  }
  r.domain_latency.reserve(static_cast<std::size_t>(config_.num_domains));
  for (int d = 0; d < config_.num_domains; ++d) {
    const sim::Histogram& h = clients_->domain_response_histogram(d);
    RunResult::DomainLatency dl;
    dl.pages = h.count();
    if (dl.pages > 0) {
      dl.p50_sec = h.quantile(0.50);
      dl.p95_sec = h.quantile(0.95);
      dl.p99_sec = h.quantile(0.99);
      dl.mean_sec = h.mean();
    }
    r.domain_latency.push_back(dl);
  }

  if (const auto* redirecting =
          dynamic_cast<const web::RedirectingDispatcher*>(dispatcher_.get())) {
    r.redirected_pages = redirecting->redirects();
    const double handled =
        static_cast<double>(redirecting->redirects() + redirecting->direct_deliveries());
    r.redirected_fraction =
        handled > 0 ? static_cast<double>(redirecting->redirects()) / handled : 0.0;
  }

  r.mean_ttl = bundle_.scheduler->ttl_stat().mean();
  r.alarm_signals = alarms_->alarm_signals() + alarms_->normal_signals();
  r.events_dispatched = sim_.events_dispatched();

  // ---- Elastic pool accounting ----
  r.pool_changes = alarms_->pool_changes();
  r.final_pool_size = alarms_->pool_size();
  if (autoscaler_) {
    r.autoscale_ups = autoscaler_->scale_up_actions();
    r.autoscale_downs = autoscaler_->scale_down_actions();
  }

  // ---- Failure accounting ----
  r.lost_pages = cluster_->total_lost_pages();
  r.lost_hits = cluster_->total_lost_hits();
  r.failed_requests = r.lost_pages + cluster_->total_rejected_pages();
  r.dns_outage_sec = fault_injector_->dns_calendar().outage_seconds(horizon);
  const double attempts =
      static_cast<double>(r.failed_requests) + static_cast<double>(r.total_pages);
  r.unavailability_fraction =
      attempts > 0 ? static_cast<double>(r.failed_requests) / attempts : 0.0;

  if (metrics_registry_) {
    // Kernel health is tracked inside the event queue regardless of the
    // registry; surface it in the snapshot alongside the wired instruments.
    metrics_registry_->gauge("kernel.events_dispatched")
        .set(static_cast<double>(sim_.events_dispatched()));
    metrics_registry_->gauge("kernel.peak_events")
        .set(static_cast<double>(sim_.peak_pending()));
    metrics_registry_->gauge("kernel.cancels").set(static_cast<double>(sim_.cancels()));
    metrics_registry_->gauge("kernel.live_events_at_end")
        .set(static_cast<double>(sim_.pending()));
    metrics_registry_->gauge("dns.outage_sec").set(r.dns_outage_sec);
    metrics_registry_->gauge("latency.mean_assignment_rtt_sec").set(r.mean_assignment_rtt_sec);
    metrics_registry_->gauge("latency.mean_network_rtt_sec").set(r.mean_network_rtt_sec);
    metrics_registry_->gauge("pool.final_size").set(static_cast<double>(r.final_pool_size));
    metrics_registry_->gauge("pool.changes").set(static_cast<double>(r.pool_changes));
    r.metrics = std::make_shared<const obs::MetricsSnapshot>(metrics_registry_->snapshot());
  }

  r.profile.setup_sec = setup_seconds_;
  r.profile.warmup_sec = warmup_wall;
  r.profile.measurement_sec = measurement_wall;
  r.profile.collect_sec = phase_watch.lap();
  return r;
}

}  // namespace adattl::experiment
