#pragma once

#include <memory>
#include <vector>

#include "core/alarm_registry.h"
#include "core/autoscaler.h"
#include "core/load_estimator.h"
#include "core/policy_factory.h"
#include "geo/geo_model.h"
#include "dnscache/client_cache.h"
#include "dnscache/name_server.h"
#include "experiment/config.h"
#include "experiment/metrics.h"
#include "fault/fault_injector.h"
#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "web/cluster.h"
#include "web/dispatcher.h"
#include "web/monitor_hub.h"
#include "workload/client_pool.h"
#include "workload/domain_set.h"

namespace adattl::experiment {

/// Wall-clock phase breakdown of one run (host time, not simulated time).
/// Purely additive observability: simulation results never depend on it.
struct RunProfile {
  double setup_sec = 0.0;        ///< Site construction (object-graph wiring)
  double warmup_sec = 0.0;       ///< event loop up to the warm-up boundary
  double measurement_sec = 0.0;  ///< event loop over the measured period
  double collect_sec = 0.0;      ///< result aggregation after the loop
  double total() const { return setup_sec + warmup_sec + measurement_sec + collect_sec; }
};

/// Aggregate outcome of one simulation run.
struct RunResult {
  /// Master seed the run was built with (SimulationConfig::seed) — lets
  /// replication outputs be traced back to their exact seed derivation.
  std::uint64_t seed = 0;
  sim::EmpiricalCdf max_util_cdf{500};
  double prob_below_090 = 0.0;
  double prob_below_098 = 0.0;
  double mean_max_utilization = 0.0;
  /// Within-run 95% batch-means CI of the mean max utilization, as a
  /// fraction of the mean (paper: "within 4%").
  double max_util_ci_relative = 0.0;
  std::vector<double> mean_server_util;
  /// Capacity-weighted mean utilization (≈ offered load / total capacity).
  double aggregate_utilization = 0.0;

  std::uint64_t total_pages = 0;
  std::uint64_t total_hits = 0;
  std::uint64_t authoritative_queries = 0;
  std::uint64_t ns_cache_hits = 0;
  /// Resolutions absorbed by per-client caches (0 unless enabled).
  std::uint64_t client_cache_hits = 0;
  /// Address requests answered by the authoritative DNS per second —
  /// must match across calibrated policies (§4.1 fairness rule).
  double address_request_rate = 0.0;
  /// Fraction of page requests whose mapping decision the DNS made
  /// directly (paper: "often below 4%").
  double dns_controlled_fraction = 0.0;

  double mean_ttl = 0.0;
  std::uint64_t alarm_signals = 0;
  std::uint64_t events_dispatched = 0;

  /// Mean page response time (queueing + service) across all servers,
  /// weighted by pages served; the per-server breakdown shows how badly
  /// overload punishes the weak servers under non-adaptive policies.
  double mean_page_response_sec = 0.0;
  std::vector<double> per_server_response_sec;
  /// Site-wide response-time percentiles (merged server histograms).
  /// These are server-side times; with geography enabled, the client
  /// additionally sees mean_network_rtt_sec of flight time per page.
  double response_p50_sec = 0.0;
  double response_p95_sec = 0.0;
  double response_p99_sec = 0.0;
  /// Mean network round-trip per page (0 without a geo model).
  double mean_network_rtt_sec = 0.0;

  // ---- Latency as a first-class result (extension; geo runs) ----
  /// Mean rtt(domain, chosen server) per DNS decision — the scheduler-side
  /// latency objective, independent of how many pages ride each mapping.
  double mean_assignment_rtt_sec = 0.0;
  /// Each server's share of the total assignment RTT mass: how much of the
  /// latency bill each server is responsible for (empty without geo).
  std::vector<double> rtt_weighted_assignment_share;
  /// Per-domain client-perceived page response time (request flight +
  /// queue + service + reply flight), summarized from per-domain
  /// histograms kept by the client pool.
  struct DomainLatency {
    double p50_sec = 0.0;
    double p95_sec = 0.0;
    double p99_sec = 0.0;
    double mean_sec = 0.0;
    std::uint64_t pages = 0;
  };
  std::vector<DomainLatency> domain_latency;

  // ---- Elastic pool accounting (0 / initial size when static) ----
  /// DNS pool membership flips over the run (scripted + autoscaler).
  std::uint64_t pool_changes = 0;
  /// Autoscaler-initiated actions (subset of pool_changes).
  std::uint64_t autoscale_ups = 0;
  std::uint64_t autoscale_downs = 0;
  /// Pool size when the run ended.
  int final_pool_size = 0;

  /// Server-side redirection counters (0 unless enabled).
  std::uint64_t redirected_pages = 0;
  double redirected_fraction = 0.0;

  // ---- Failure accounting (all 0 in fault-free runs) ----
  /// Client-visible page failures: submissions rejected by a crashed
  /// server plus pages dropped (queued or in flight) by a crash.
  std::uint64_t failed_requests = 0;
  /// Pages/hits dropped by crashes across all servers.
  std::uint64_t lost_pages = 0;
  std::uint64_t lost_hits = 0;
  /// Seconds the authoritative DNS was unreachable within the horizon.
  double dns_outage_sec = 0.0;
  /// Failed page attempts over all page attempts (failed + requested);
  /// the site-level unavailability a client population experienced.
  double unavailability_fraction = 0.0;

  /// End-of-run metrics snapshot; null unless config.metrics_enabled.
  /// shared_ptr keeps RunResult cheaply copyable across sweep plumbing.
  std::shared_ptr<const obs::MetricsSnapshot> metrics;
  /// Wall-clock phase breakdown (always filled; near-zero cost).
  RunProfile profile;
};

/// One fully wired distributed Web site: servers, authoritative DNS
/// scheduler, per-domain name servers, client population, monitor, alarm
/// feedback, hidden-load estimation and metrics.
///
/// Construction builds the whole object graph from a SimulationConfig;
/// run() executes warm-up plus the measured period and returns the
/// aggregated results. One Site = one simulation run (single-use).
class Site {
 public:
  explicit Site(const SimulationConfig& config);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Runs warm-up + measured period; single use.
  RunResult run();

  // ---- Introspection (tests, examples) ----
  sim::Simulator& simulator() { return sim_; }
  web::Cluster& cluster() { return *cluster_; }
  core::DnsScheduler& scheduler() { return *bundle_.scheduler; }
  core::DomainModel& domain_model() { return *bundle_.domains; }
  core::AlarmRegistry& alarms() { return *alarms_; }
  web::MonitorHub& monitor() { return *monitor_; }
  core::LoadEstimator& estimator() { return *estimator_; }
  const workload::DomainSet& domain_set() const { return domains_; }
  workload::ThinkTimeModel& think_time_model() { return *think_model_; }
  /// Null when geography is disabled.
  const geo::GeoModel* geo_model() const { return geo_.get(); }
  /// NS `replica` (0-based) of domain `d`.
  dnscache::NameServer& name_server(int d, int replica = 0) {
    return *name_servers_.at(
        static_cast<std::size_t>(d * config_.ns_per_domain + replica));
  }
  const SimulationConfig& config() const { return config_; }
  /// The fault layer (always constructed; empty schedule = inert).
  fault::FaultInjector& fault_injector() { return *fault_injector_; }
  /// The pooled client population.
  workload::ClientPool& clients() { return *clients_; }
  /// Null unless config.autoscale_enabled.
  core::Autoscaler* autoscaler() { return autoscaler_.get(); }

  /// Null unless config.metrics_enabled / config.trace_enabled.
  obs::MetricsRegistry* metrics_registry() { return metrics_registry_.get(); }
  obs::EventTracer* event_tracer() { return event_tracer_.get(); }

 private:
  void collect_estimator_window(double window_sec);

  SimulationConfig config_;
  sim::Simulator sim_;
  sim::RngStream rng_;

  workload::DomainSet domains_;  // perturbed (actual) workload
  std::unique_ptr<workload::ThinkTimeModel> think_model_;
  std::shared_ptr<const geo::GeoModel> geo_;
  std::unique_ptr<web::Cluster> cluster_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<web::PageDispatcher> dispatcher_;
  std::unique_ptr<core::AlarmRegistry> alarms_;
  std::unique_ptr<core::Autoscaler> autoscaler_;
  core::SchedulerBundle bundle_;
  std::unique_ptr<core::LoadEstimator> estimator_;
  std::vector<std::unique_ptr<dnscache::NameServer>> name_servers_;
  std::vector<std::unique_ptr<dnscache::ClientCache>> client_caches_;  // optional layer
  std::unique_ptr<workload::ClientPool> clients_;
  std::unique_ptr<web::MonitorHub> monitor_;
  std::unique_ptr<MaxUtilizationTracker> tracker_;

  // Observability (null when disabled — the zero-cost default).
  std::unique_ptr<obs::MetricsRegistry> metrics_registry_;
  std::unique_ptr<obs::EventTracer> event_tracer_;
  double setup_seconds_ = 0.0;

  int ticks_ = 0;
  bool ran_ = false;
};

}  // namespace adattl::experiment
