#pragma once

#include <string>
#include <vector>

namespace adattl::experiment {

/// Converts scenario-file text into CLI-style arguments.
///
/// Format: one `key = value` per line; keys are the CLI flag names without
/// the leading dashes (`policy`, `heterogeneity`, `min-ttl`, ...). Boolean
/// knobs take `true`/`false` and genuinely override either way, so a
/// default-on knob like `calibration` can be switched off from a file.
/// Repeatable knobs (`shift`, `outage`, the fault windows) may appear on
/// multiple lines. A `#` at the start of a line or preceded by whitespace
/// starts a comment (a `#` embedded in a value is kept); blank lines are
/// ignored.
///
///     # hot-spot scenario
///     policy       = DRR2-TTL/S_K
///     heterogeneity = 50
///     min-ttl      = 60
///     uniform      = false
///     shift        = 600:3:5
///
/// Throws std::invalid_argument with line numbers on malformed input. The
/// returned vector feeds parse_cli(), so value validation happens there.
std::vector<std::string> scenario_text_to_args(const std::string& text);

/// Reads a scenario file from disk (throws std::runtime_error on I/O
/// failure) and converts it with scenario_text_to_args().
std::vector<std::string> load_scenario_file(const std::string& path);

}  // namespace adattl::experiment
