#pragma once

#include <string>
#include <vector>

namespace adattl::experiment {

/// Converts scenario-file text into CLI-style arguments.
///
/// Format: one `key = value` per line; keys are the CLI flag names without
/// the leading dashes (`policy`, `heterogeneity`, `min-ttl`, ...). Boolean
/// flags take `true`/`false` (false = omit the flag). Repeatable flags
/// (`shift`, `outage`) may appear on multiple lines. `#` starts a comment;
/// blank lines are ignored.
///
///     # hot-spot scenario
///     policy       = DRR2-TTL/S_K
///     heterogeneity = 50
///     min-ttl      = 60
///     uniform      = false
///     shift        = 600:3:5
///
/// Throws std::invalid_argument with line numbers on malformed input. The
/// returned vector feeds parse_cli(), so value validation happens there.
std::vector<std::string> scenario_text_to_args(const std::string& text);

/// Reads a scenario file from disk (throws std::runtime_error on I/O
/// failure) and converts it with scenario_text_to_args().
std::vector<std::string> load_scenario_file(const std::string& path);

}  // namespace adattl::experiment
