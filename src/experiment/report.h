#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace adattl::experiment {

/// Minimal fixed-width table printer for the bench/example binaries, so
/// every figure harness prints rows/series in the same shape the paper's
/// tables and plots report.
class TableReport {
 public:
  explicit TableReport(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns to stdout, preceded by `title`.
  void print(const std::string& title) const;

  /// Renders as CSV to stdout (header + rows), for plotting pipelines.
  void print_csv() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Serializes a metrics snapshot as a JSON object keyed by metric name:
/// counters/gauges as {"kind":...,"value":...}, histograms additionally
/// with count, sum, upper and the raw bin array (last bin = overflow).
std::string metrics_to_json(const obs::MetricsSnapshot& snapshot);

}  // namespace adattl::experiment
