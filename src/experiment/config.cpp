#include "experiment/config.h"

#include <stdexcept>

namespace adattl::experiment {

void SimulationConfig::validate() const {
  cluster.validate();
  session.validate();
  if (num_domains < 1) throw std::invalid_argument("config: need >= 1 domain");
  if (total_clients < 1) throw std::invalid_argument("config: need >= 1 client");
  if (mean_think_sec <= 0) throw std::invalid_argument("config: think time must be > 0");
  if (zipf_theta < 0) throw std::invalid_argument("config: zipf theta must be >= 0");
  if (rate_perturbation_percent < 0) throw std::invalid_argument("config: perturbation >= 0");
  if (policy.empty()) throw std::invalid_argument("config: no policy");
  for (const workload::RateShift& shift : rate_shifts) {
    if (shift.at_sec < 0) throw std::invalid_argument("config: rate shift in the past");
    if (shift.domain < 0 || shift.domain >= num_domains) {
      throw std::invalid_argument("config: rate shift for unknown domain");
    }
    if (shift.rate_factor <= 0) {
      throw std::invalid_argument("config: rate shift factor must be > 0");
    }
  }
  if (reference_ttl_sec <= 0) throw std::invalid_argument("config: reference TTL must be > 0");
  if (alarm_threshold <= 0 || alarm_threshold > 1) {
    throw std::invalid_argument("config: alarm threshold must lie in (0, 1]");
  }
  if (monitor_interval_sec <= 0) throw std::invalid_argument("config: monitor interval > 0");
  for (const ServerOutage& outage : outages) {
    if (outage.start_sec < 0) throw std::invalid_argument("config: outage in the past");
    if (outage.duration_sec <= 0) throw std::invalid_argument("config: outage needs duration");
    if (outage.server < 0 || outage.server >= cluster.size()) {
      throw std::invalid_argument("config: outage for unknown server");
    }
  }
  faults.validate(cluster.size());
  if (client_retry_delay_sec <= 0) {
    throw std::invalid_argument("config: client retry delay must be > 0");
  }
  if (ns_retry_initial_backoff_sec <= 0) {
    throw std::invalid_argument("config: NS retry backoff must be > 0");
  }
  if (ns_retry_max_backoff_sec < ns_retry_initial_backoff_sec) {
    throw std::invalid_argument("config: NS max backoff must be >= initial");
  }
  if (estimator_smoothing <= 0 || estimator_smoothing > 1) {
    throw std::invalid_argument("config: estimator smoothing must lie in (0, 1]");
  }
  if (estimator_window_count < 1) {
    throw std::invalid_argument("config: estimator window count >= 1");
  }
  if (estimator_collect_every_ticks < 1) {
    throw std::invalid_argument("config: estimator collection period >= 1 tick");
  }
  if (ns_min_ttl_sec < 0) throw std::invalid_argument("config: NS min TTL >= 0");
  if (ns_per_domain < 1) throw std::invalid_argument("config: need >= 1 NS per domain");
  if (redirect_enabled && redirect_max_wait_sec <= 0) {
    throw std::invalid_argument("config: redirect max wait must be > 0");
  }
  if (redirect_delay_sec < 0) throw std::invalid_argument("config: redirect delay >= 0");
  if (geo_regions < 0) throw std::invalid_argument("config: geo regions >= 0");
  if (geo_regions > 0 &&
      (geo_intra_rtt_sec < 0 || geo_inter_rtt_sec < geo_intra_rtt_sec)) {
    throw std::invalid_argument("config: need 0 <= intra <= inter RTT");
  }
  if (policy.rfind("GEO", 0) == 0 && geo_regions == 0) {
    throw std::invalid_argument("config: the GEO policy needs geo_regions > 0");
  }
  if (trace_enabled && trace_capacity < 1) {
    throw std::invalid_argument("config: trace capacity >= 1 when tracing");
  }
  if (warmup_sec < 0) throw std::invalid_argument("config: warmup >= 0");
  if (duration_sec <= 0) throw std::invalid_argument("config: duration > 0");
}

}  // namespace adattl::experiment
