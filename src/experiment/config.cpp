#include "experiment/config.h"

#include "experiment/param_registry.h"

namespace adattl::experiment {

void SimulationConfig::validate() const {
  // All per-knob range checks and cross-knob constraints live in the
  // parameter registry, so programmatically built configs are rejected
  // with exactly the same messages as CLI/env/scenario input.
  CliOptions wrapped;
  wrapped.config = *this;
  ParamRegistry::instance().validate(wrapped);
}

}  // namespace adattl::experiment
