#include "experiment/config.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "experiment/param_registry.h"

namespace adattl::experiment {

SimulationConfig SimulationConfig::scaled() const {
  if (scale == 1.0) return *this;
  SimulationConfig c = *this;
  const double clients = std::llround(scale * static_cast<double>(total_clients));
  if (clients < 1.0 || clients > static_cast<double>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument("config: scaled client population outside [1, INT_MAX]");
  }
  c.total_clients = static_cast<int>(clients);
  c.cluster.total_capacity_hits_per_sec *= scale;
  c.scale = 1.0;
  return c;
}

void SimulationConfig::validate() const {
  // All per-knob range checks and cross-knob constraints live in the
  // parameter registry, so programmatically built configs are rejected
  // with exactly the same messages as CLI/env/scenario input.
  CliOptions wrapped;
  wrapped.config = *this;
  ParamRegistry::instance().validate(wrapped);
}

}  // namespace adattl::experiment
