#pragma once

#include <memory>
#include <vector>

#include "core/alarm_registry.h"
#include "core/autoscaler.h"
#include "core/load_estimator.h"
#include "core/policy_factory.h"
#include "dnscache/client_cache.h"
#include "dnscache/name_server.h"
#include "experiment/config.h"
#include "experiment/metrics.h"
#include "experiment/parallel_executor.h"
#include "experiment/site.h"
#include "fault/fault_injector.h"
#include "geo/geo_model.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "web/cluster.h"
#include "web/dispatcher.h"
#include "workload/client_pool.h"
#include "workload/domain_set.h"

namespace adattl::experiment {

/// Domain-sharded parallel-in-one-run mode (DESIGN.md §16).
///
/// Clients in different domains interact only through two channels: the
/// DNS estimator/alarm state (updated on the monitor clock) and the shared
/// servers. ShardedSite exploits that: the domains are partitioned
/// round-robin over N shards, each shard owning a private simulator with
/// its own scheduler replica, cluster replica, name servers and pooled
/// clients for its domains. Shards advance independently between monitor
/// ticks; at every tick all shards stop on a phase barrier and the main
/// thread — in fixed shard order — merges server busy-time deltas and
/// queue depths into site-wide utilizations, feeds the SAME merged view to
/// every shard's alarm registry and (summed drained hit counters) to every
/// shard's estimator, so all scheduler replicas evolve identical feedback
/// state.
///
/// Determinism: shards share no mutable state between barriers and every
/// merge runs in fixed shard order on the caller's thread, so a run is
/// bit-identical across repeats at a fixed seed and shard count — whatever
/// the worker count (ADATTL_JOBS=1 and =8 produce the same bytes).
///
/// Modeling caveats vs the unsharded Site (documented, intentional):
/// each shard's cluster replica has the full per-server capacity, so
/// service times are exact but cross-shard queueing contention is
/// under-modeled — a server's merged utilization is the sum of its
/// replicas' busy fractions (clamped at 1), while queueing delay is
/// computed per shard against that shard's share of the load. The DNS
/// decision stream is split per shard (each shard's replica schedules its
/// own domains with its own RNG), so decisions differ from the unsharded
/// run's single stream. Sharded results are therefore an approximation of
/// the same model, not a bit-compatible replay of Site.
class ShardedSite {
 public:
  /// One shard: a self-contained slice of the simulation owning every
  /// mutable object its domains touch. Public for tests/invariant
  /// checkers; treat as read-only from outside.
  struct Shard {
    sim::RngStream rng{0};
    std::vector<int> domains;  ///< owned global domain ids, ascending
    std::unique_ptr<sim::Simulator> sim;
    std::unique_ptr<workload::ThinkTimeModel> think;
    std::unique_ptr<web::Cluster> cluster;
    std::unique_ptr<fault::FaultInjector> fault;
    std::unique_ptr<web::PageDispatcher> dispatcher;
    std::unique_ptr<core::AlarmRegistry> alarms;
    /// Per-shard autoscaler replica (null unless autoscale_enabled). Every
    /// replica observes the same merged utilization view in the same
    /// order, so all shards take identical pool actions at every tick.
    std::unique_ptr<core::Autoscaler> autoscaler;
    core::SchedulerBundle bundle;
    std::unique_ptr<core::LoadEstimator> estimator;
    /// NS replicas of owned domain k live at [k*ns_per_domain, ...).
    std::vector<std::unique_ptr<dnscache::NameServer>> name_servers;
    std::vector<std::unique_ptr<dnscache::ClientCache>> client_caches;
    std::unique_ptr<workload::ClientPool> clients;
    /// Per-server cumulative busy time at the previous barrier.
    std::vector<double> prev_busy;
  };

  /// `config.shard_domains` must be set; `scale` is applied first. The
  /// shard count is config.shard_count (0 = default_jobs()), clamped to
  /// [1, num_domains].
  explicit ShardedSite(const SimulationConfig& config);

  ShardedSite(const ShardedSite&) = delete;
  ShardedSite& operator=(const ShardedSite&) = delete;

  /// Runs warm-up + measured period across `executor`; single use.
  RunResult run(ParallelExecutor& executor);
  /// run() on a fresh executor sized by ADATTL_JOBS.
  RunResult run();

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Shard& shard(int s) { return *shards_.at(static_cast<std::size_t>(s)); }
  const SimulationConfig& config() const { return config_; }
  const workload::DomainSet& domain_set() const { return domains_; }
  MaxUtilizationTracker& tracker() { return *tracker_; }

 private:
  void monitor_tick(double now);
  RunResult aggregate(double horizon);

  SimulationConfig config_;
  sim::RngStream rng_;
  workload::DomainSet domains_;  // perturbed (actual) workload, global view
  std::shared_ptr<const geo::GeoModel> geo_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<MaxUtilizationTracker> tracker_;
  int ticks_ = 0;
  double setup_seconds_ = 0.0;
  bool ran_ = false;
};

}  // namespace adattl::experiment
