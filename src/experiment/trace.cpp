#include "experiment/trace.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace adattl::experiment {

TraceRecorder::TraceRecorder(std::size_t max_samples) : max_samples_(max_samples) {}

void TraceRecorder::attach(web::MonitorHub& hub) {
  hub.add_observer([this](sim::SimTime now, const std::vector<double>& utils) {
    observe(now, utils);
  });
}

void TraceRecorder::observe(sim::SimTime now, const std::vector<double>& utilizations) {
  if (max_samples_ != 0 && samples_.size() >= max_samples_) {
    ++dropped_;
    return;
  }
  TraceSample s;
  s.time = now;
  s.utilizations = utilizations;
  s.max_utilization =
      utilizations.empty() ? 0.0 : *std::max_element(utilizations.begin(), utilizations.end());
  samples_.push_back(std::move(s));
}

std::string TraceRecorder::to_csv() const {
  std::string out = "time";
  const std::size_t n = samples_.empty() ? 0 : samples_.front().utilizations.size();
  for (std::size_t i = 0; i < n; ++i) out += ",s" + std::to_string(i);
  out += ",max\n";
  char buf[64];
  for (const TraceSample& s : samples_) {
    std::snprintf(buf, sizeof(buf), "%.3f", s.time);
    out += buf;
    for (double u : s.utilizations) {
      std::snprintf(buf, sizeof(buf), ",%.6f", u);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%.6f\n", s.max_utilization);
    out += buf;
  }
  return out;
}

void TraceRecorder::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("TraceRecorder: cannot open '" + path + "' for writing");
  const std::string csv = to_csv();
  const std::size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  const int rc = std::fclose(f);
  if (written != csv.size() || rc != 0) {
    throw std::runtime_error("TraceRecorder: short write to '" + path + "'");
  }
}

}  // namespace adattl::experiment
