#include "experiment/runner.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "experiment/env_config.h"
#include "experiment/report.h"
#include "experiment/sharded_site.h"

namespace adattl::experiment {

sim::MeanCi ReplicatedResult::ci(const std::function<double(const RunResult&)>& f) const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& r : runs) xs.push_back(f(r));
  return sim::mean_ci(xs);
}

sim::MeanCi ReplicatedResult::prob_below(double u) const {
  return ci([u](const RunResult& r) { return r.max_util_cdf.prob_below(u); });
}

sim::MeanCi ReplicatedResult::aggregate_utilization() const {
  return ci([](const RunResult& r) { return r.aggregate_utilization; });
}

sim::MeanCi ReplicatedResult::address_request_rate() const {
  return ci([](const RunResult& r) { return r.address_request_rate; });
}

std::vector<std::pair<double, double>> ReplicatedResult::mean_cdf_curve(int points) const {
  if (points < 1) throw std::invalid_argument("mean_cdf_curve: points must be >= 1");
  std::vector<std::pair<double, double>> curve;
  curve.reserve(static_cast<std::size_t>(points) + 1);
  for (int i = 0; i <= points; ++i) {
    const double u = static_cast<double>(i) / points;
    double sum = 0.0;
    for (const auto& r : runs) sum += r.max_util_cdf.prob_below(u);
    curve.emplace_back(u, runs.empty() ? 0.0 : sum / static_cast<double>(runs.size()));
  }
  return curve;
}

std::string SweepResult::manifest_json() const {
  char buf[128];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "\"jobs\":%d,\"wall_seconds\":%.6g,\"points\":[", jobs,
                wall_seconds);
  out += buf;
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (p) out += ",";
    const std::string label = p < point_labels.size() ? point_labels[p] : "";
    const double cpu = p < point_cpu_seconds.size() ? point_cpu_seconds[p] : 0.0;
    RunProfile phases;  // summed over the point's replications
    for (const RunResult& r : points[p].runs) {
      phases.setup_sec += r.profile.setup_sec;
      phases.warmup_sec += r.profile.warmup_sec;
      phases.measurement_sec += r.profile.measurement_sec;
      phases.collect_sec += r.profile.collect_sec;
    }
    out += "{\"label\":\"" + json_escape(label) + "\",";
    std::snprintf(buf, sizeof(buf), "\"replications\":%zu,\"cpu_seconds\":%.6g,",
                  points[p].runs.size(), cpu);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"phases\":{\"setup_sec\":%.6g,\"warmup_sec\":%.6g,"
                  "\"measurement_sec\":%.6g,\"collect_sec\":%.6g}",
                  phases.setup_sec, phases.warmup_sec, phases.measurement_sec,
                  phases.collect_sec);
    out += buf;
    if (p < point_config_json.size() && !point_config_json[p].empty()) {
      out += ",\"config\":" + point_config_json[p];
    }
    if (p < point_provenance_json.size() && !point_provenance_json[p].empty()) {
      out += ",\"provenance\":" + point_provenance_json[p];
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::size_t Sweep::add(SimulationConfig config, int replications, std::string label) {
  if (replications < 1) throw std::invalid_argument("Sweep::add: need >= 1 replications");
  points_.push_back(Point{std::move(config), replications, std::move(label)});
  return points_.size() - 1;
}

std::size_t Sweep::add_policy(SimulationConfig base, const std::string& policy,
                              int replications, std::string label) {
  base.policy = policy;
  return add(std::move(base), replications, label.empty() ? policy : std::move(label));
}

SweepResult Sweep::run(ParallelExecutor& executor, ProgressFn on_point_done) const {
  using Clock = std::chrono::steady_clock;
  const auto since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  SweepResult out;
  out.jobs = executor.jobs();
  out.points.resize(points_.size());
  out.point_cpu_seconds.assign(points_.size(), 0.0);
  out.point_labels.reserve(points_.size());
  out.point_config_json.reserve(points_.size());
  out.point_provenance_json.reserve(points_.size());
  const ParamRegistry& registry = ParamRegistry::instance();
  for (const Point& point : points_) {
    out.point_labels.push_back(point.label);
    CliOptions resolved;
    resolved.config = point.config;
    resolved.replications = point.replications;
    out.point_config_json.push_back(registry.config_json(resolved));
    out.point_provenance_json.push_back(
        registry.provenance_json(registry.infer_provenance(resolved)));
  }

  // Pre-size every point's run vector so each task owns exactly one slot:
  // result placement is positional, never completion-ordered.
  struct PointState {
    std::size_t remaining = 0;
    double cpu_seconds = 0.0;
  };
  std::vector<PointState> state(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    const std::size_t reps = static_cast<std::size_t>(points_[p].replications);
    out.points[p].runs.resize(reps);
    state[p].remaining = reps;
  }

  std::mutex mutex;  // guards state, completed count, and progress delivery
  std::size_t completed = 0;
  const auto start = Clock::now();

  std::vector<std::function<void()>> tasks;
  for (std::size_t p = 0; p < points_.size(); ++p) {
    for (int i = 0; i < points_[p].replications; ++i) {
      tasks.push_back([this, &out, &state, &mutex, &completed, &on_point_done, &since,
                       start, p, i] {
        SimulationConfig config = points_[p].config;
        config.seed = points_[p].config.seed + static_cast<std::uint64_t>(i);
        const auto run_start = Clock::now();
        RunResult result;
        if (config.shard_domains) {
          // Sharded runs parallelize internally over their own pool (the
          // sweep executor is not reentrant from inside a task).
          ShardedSite site(config);
          result = site.run();
        } else {
          Site site(config);
          result = site.run();
        }
        const double run_seconds = since(run_start);
        out.points[p].runs[static_cast<std::size_t>(i)] = std::move(result);

        std::lock_guard<std::mutex> lock(mutex);
        state[p].cpu_seconds += run_seconds;
        if (--state[p].remaining == 0) {
          out.point_cpu_seconds[p] = state[p].cpu_seconds;
          ++completed;
          if (on_point_done) {
            SweepPointDone done;
            done.index = p;
            done.completed = completed;
            done.total = points_.size();
            done.label = points_[p].label;
            done.cpu_seconds = state[p].cpu_seconds;
            done.elapsed_seconds = since(start);
            on_point_done(done);
          }
        }
      });
    }
  }

  executor.run(std::move(tasks));
  out.wall_seconds = since(start);
  return out;
}

SweepResult Sweep::run(ProgressFn on_point_done) const {
  ParallelExecutor executor;  // sized by ADATTL_JOBS / hardware_concurrency
  return run(executor, std::move(on_point_done));
}

ReplicatedResult run_replications(SimulationConfig config, int replications) {
  if (replications < 1) throw std::invalid_argument("run_replications: need >= 1");
  Sweep sweep;
  sweep.add(std::move(config), replications);
  SweepResult result = sweep.run();
  return std::move(result.points.front());
}

ReplicatedResult run_policy(SimulationConfig base, const std::string& policy, int replications) {
  base.policy = policy;
  return run_replications(std::move(base), replications);
}

namespace {

void append_kv(std::string& out, const char* key, double value, bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, value);
  out += buf;
  if (comma) out += ",";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string to_json(const SimulationConfig& config, const ReplicatedResult& result) {
  CliOptions resolved;
  resolved.config = config;
  if (!result.runs.empty()) resolved.replications = static_cast<int>(result.runs.size());
  return to_json(config, result, ParamRegistry::instance().infer_provenance(resolved));
}

std::string to_json(const SimulationConfig& config, const ReplicatedResult& result,
                    const ProvenanceMap& provenance) {
  std::string out = "{";
  out += "\"policy\":\"" + json_escape(config.policy) + "\",";
  append_kv(out, "servers", config.cluster.size());
  append_kv(out, "heterogeneity_percent", config.cluster.heterogeneity_percent());
  append_kv(out, "domains", config.num_domains);
  // Headline fields describe the population actually simulated, so the
  // scale multiplier is applied (the resolved-config block below keeps the
  // pre-scale clients + scale knob for exact reproduction).
  append_kv(out, "clients", config.scaled().total_clients);
  append_kv(out, "replications", static_cast<double>(result.runs.size()));
  append_kv(out, "duration_sec", config.duration_sec);

  const sim::MeanCi p90 = result.prob_below(0.90);
  const sim::MeanCi p98 = result.prob_below(0.98);
  append_kv(out, "p_max_util_below_090", p90.mean);
  append_kv(out, "p_max_util_below_090_ci", p90.halfwidth);
  append_kv(out, "p_max_util_below_098", p98.mean);
  append_kv(out, "p_max_util_below_098_ci", p98.halfwidth);
  append_kv(out, "mean_max_utilization",
            result.ci([](const RunResult& r) { return r.mean_max_utilization; }).mean);
  append_kv(out, "aggregate_utilization", result.aggregate_utilization().mean);
  append_kv(out, "address_request_rate", result.address_request_rate().mean);
  append_kv(out, "dns_controlled_fraction",
            result.ci([](const RunResult& r) { return r.dns_controlled_fraction; }).mean);
  append_kv(out, "mean_ttl_sec", result.ci([](const RunResult& r) { return r.mean_ttl; }).mean);
  append_kv(out, "mean_response_sec",
            result.ci([](const RunResult& r) { return r.mean_page_response_sec; }).mean);
  append_kv(out, "response_p99_sec",
            result.ci([](const RunResult& r) { return r.response_p99_sec; }).mean);
  append_kv(out, "mean_network_rtt_sec",
            result.ci([](const RunResult& r) { return r.mean_network_rtt_sec; }).mean);
  append_kv(out, "mean_assignment_rtt_sec",
            result.ci([](const RunResult& r) { return r.mean_assignment_rtt_sec; }).mean);
  append_kv(out, "pool_changes",
            result.ci([](const RunResult& r) { return static_cast<double>(r.pool_changes); })
                .mean);
  append_kv(out, "autoscale_ups",
            result.ci([](const RunResult& r) { return static_cast<double>(r.autoscale_ups); })
                .mean);
  append_kv(out, "autoscale_downs",
            result.ci([](const RunResult& r) { return static_cast<double>(r.autoscale_downs); })
                .mean);
  append_kv(out, "final_pool_size",
            result.ci([](const RunResult& r) { return static_cast<double>(r.final_pool_size); })
                .mean);
  append_kv(out, "failed_requests",
            result.ci([](const RunResult& r) { return static_cast<double>(r.failed_requests); })
                .mean);
  append_kv(out, "lost_pages",
            result.ci([](const RunResult& r) { return static_cast<double>(r.lost_pages); }).mean);
  append_kv(out, "lost_hits",
            result.ci([](const RunResult& r) { return static_cast<double>(r.lost_hits); }).mean);
  append_kv(out, "dns_outage_sec",
            result.ci([](const RunResult& r) { return r.dns_outage_sec; }).mean);
  append_kv(out, "unavailability_fraction",
            result.ci([](const RunResult& r) { return r.unavailability_fraction; }).mean);

  out += "\"mean_server_utilization\":[";
  if (!result.runs.empty()) {
    const RunResult& first = result.runs.front();
    for (std::size_t s = 0; s < first.mean_server_util.size(); ++s) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g%s", first.mean_server_util[s],
                    s + 1 < first.mean_server_util.size() ? "," : "");
      out += buf;
    }
  }
  out += "]";
  // Latency-as-a-result arrays (first replication, like the array above):
  // empty without a geo model / absent without domains, so latency-free
  // runs keep their historical schema plus two cheap keys.
  if (!result.runs.empty()) {
    const RunResult& first = result.runs.front();
    out += ",\"rtt_weighted_assignment_share\":[";
    for (std::size_t s = 0; s < first.rtt_weighted_assignment_share.size(); ++s) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g%s", first.rtt_weighted_assignment_share[s],
                    s + 1 < first.rtt_weighted_assignment_share.size() ? "," : "");
      out += buf;
    }
    out += "]";
    out += ",\"domain_latency\":[";
    for (std::size_t d = 0; d < first.domain_latency.size(); ++d) {
      const RunResult::DomainLatency& dl = first.domain_latency[d];
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"p50_sec\":%.6g,\"p95_sec\":%.6g,\"p99_sec\":%.6g,"
                    "\"mean_sec\":%.6g,\"pages\":%llu}%s",
                    dl.p50_sec, dl.p95_sec, dl.p99_sec, dl.mean_sec,
                    static_cast<unsigned long long>(dl.pages),
                    d + 1 < first.domain_latency.size() ? "," : "");
      out += buf;
    }
    out += "]";
  }
  // Fully resolved knob values and their provenance, straight from the
  // parameter registry — the machine-readable "exactly what ran" record.
  {
    CliOptions resolved;
    resolved.config = config;
    if (!result.runs.empty()) resolved.replications = static_cast<int>(result.runs.size());
    const ParamRegistry& registry = ParamRegistry::instance();
    out += ",\"config\":" + registry.config_json(resolved);
    out += ",\"provenance\":" + registry.provenance_json(provenance);
  }
  // Per-run observability snapshot (first replication), present only when
  // the run was built with metrics_enabled.
  if (!result.runs.empty() && result.runs.front().metrics) {
    out += ",\"metrics\":" + metrics_to_json(*result.runs.front().metrics);
  }
  out += "}";
  return out;
}

int default_replications() {
  return env_int("ADATTL_REPLICATIONS", 3, 1, 30);
}

double default_duration_sec() {
  return env_double("ADATTL_DURATION_SEC", 18000.0, 600.0, 1e7);
}

}  // namespace adattl::experiment
