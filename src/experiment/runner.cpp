#include "experiment/runner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace adattl::experiment {

sim::MeanCi ReplicatedResult::ci(const std::function<double(const RunResult&)>& f) const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& r : runs) xs.push_back(f(r));
  return sim::mean_ci(xs);
}

sim::MeanCi ReplicatedResult::prob_below(double u) const {
  return ci([u](const RunResult& r) { return r.max_util_cdf.prob_below(u); });
}

sim::MeanCi ReplicatedResult::aggregate_utilization() const {
  return ci([](const RunResult& r) { return r.aggregate_utilization; });
}

sim::MeanCi ReplicatedResult::address_request_rate() const {
  return ci([](const RunResult& r) { return r.address_request_rate; });
}

std::vector<std::pair<double, double>> ReplicatedResult::mean_cdf_curve(int points) const {
  std::vector<std::pair<double, double>> curve;
  curve.reserve(static_cast<std::size_t>(points) + 1);
  for (int i = 0; i <= points; ++i) {
    const double u = static_cast<double>(i) / points;
    double sum = 0.0;
    for (const auto& r : runs) sum += r.max_util_cdf.prob_below(u);
    curve.emplace_back(u, runs.empty() ? 0.0 : sum / static_cast<double>(runs.size()));
  }
  return curve;
}

ReplicatedResult run_replications(SimulationConfig config, int replications) {
  if (replications < 1) throw std::invalid_argument("run_replications: need >= 1");
  ReplicatedResult out;
  out.runs.reserve(static_cast<std::size_t>(replications));
  const std::uint64_t base_seed = config.seed;
  for (int i = 0; i < replications; ++i) {
    config.seed = base_seed + static_cast<std::uint64_t>(i);
    Site site(config);
    out.runs.push_back(site.run());
  }
  return out;
}

ReplicatedResult run_policy(SimulationConfig base, const std::string& policy, int replications) {
  base.policy = policy;
  return run_replications(std::move(base), replications);
}

namespace {

void append_kv(std::string& out, const char* key, double value, bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, value);
  out += buf;
  if (comma) out += ",";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_json(const SimulationConfig& config, const ReplicatedResult& result) {
  std::string out = "{";
  out += "\"policy\":\"" + json_escape(config.policy) + "\",";
  append_kv(out, "servers", config.cluster.size());
  append_kv(out, "heterogeneity_percent", config.cluster.heterogeneity_percent());
  append_kv(out, "domains", config.num_domains);
  append_kv(out, "clients", config.total_clients);
  append_kv(out, "replications", static_cast<double>(result.runs.size()));
  append_kv(out, "duration_sec", config.duration_sec);

  const sim::MeanCi p90 = result.prob_below(0.90);
  const sim::MeanCi p98 = result.prob_below(0.98);
  append_kv(out, "p_max_util_below_090", p90.mean);
  append_kv(out, "p_max_util_below_090_ci", p90.halfwidth);
  append_kv(out, "p_max_util_below_098", p98.mean);
  append_kv(out, "p_max_util_below_098_ci", p98.halfwidth);
  append_kv(out, "mean_max_utilization",
            result.ci([](const RunResult& r) { return r.mean_max_utilization; }).mean);
  append_kv(out, "aggregate_utilization", result.aggregate_utilization().mean);
  append_kv(out, "address_request_rate", result.address_request_rate().mean);
  append_kv(out, "dns_controlled_fraction",
            result.ci([](const RunResult& r) { return r.dns_controlled_fraction; }).mean);
  append_kv(out, "mean_ttl_sec", result.ci([](const RunResult& r) { return r.mean_ttl; }).mean);
  append_kv(out, "mean_response_sec",
            result.ci([](const RunResult& r) { return r.mean_page_response_sec; }).mean);
  append_kv(out, "response_p99_sec",
            result.ci([](const RunResult& r) { return r.response_p99_sec; }).mean);
  append_kv(out, "mean_network_rtt_sec",
            result.ci([](const RunResult& r) { return r.mean_network_rtt_sec; }).mean);

  out += "\"mean_server_utilization\":[";
  const RunResult& first = result.runs.front();
  for (std::size_t s = 0; s < first.mean_server_util.size(); ++s) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g%s", first.mean_server_util[s],
                  s + 1 < first.mean_server_util.size() ? "," : "");
    out += buf;
  }
  out += "]}";
  return out;
}

namespace {

double env_double(const char* name, double fallback, double lo, double hi) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  try {
    return std::clamp(std::stod(v), lo, hi);
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

int default_replications() {
  return static_cast<int>(env_double("ADATTL_REPLICATIONS", 3, 1, 30));
}

double default_duration_sec() {
  return env_double("ADATTL_DURATION_SEC", 18000.0, 600.0, 1e7);
}

}  // namespace adattl::experiment
