#include "experiment/sharded_site.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/profiler.h"

namespace adattl::experiment {

ShardedSite::ShardedSite(const SimulationConfig& config)
    : config_(config.scaled()), rng_(config_.seed) {
  obs::Stopwatch setup_watch;
  config_.validate();
  if (!config_.shard_domains) {
    throw std::invalid_argument("ShardedSite: config.shard_domains must be set");
  }

  // ---- Workload population (global view; same derivation as Site) ----
  const workload::DomainSet base =
      config_.uniform_clients
          ? workload::make_uniform_domains(config_.num_domains, config_.total_clients,
                                           config_.mean_think_sec)
          : workload::make_zipf_domains(config_.num_domains, config_.total_clients,
                                        config_.mean_think_sec, config_.zipf_theta);
  domains_ = base;
  if (config_.rate_perturbation_percent > 0.0) {
    workload::apply_rate_perturbation(domains_, config_.rate_perturbation_percent);
  }

  // ---- Geography (shared, immutable) ----
  const int num_servers = config_.cluster.size();
  if (config_.geo_regions > 0) {
    geo_ = std::make_shared<const geo::GeoModel>(
        geo::GeoModel::regions(config_.num_domains, num_servers, config_.geo_regions,
                               config_.geo_intra_rtt_sec, config_.geo_inter_rtt_sec));
  }

  // ---- Failure schedule (identical copy driven inside every shard) ----
  fault::FaultSchedule schedule;
  for (const ServerOutage& outage : config_.outages) {
    schedule.pauses.push_back(
        fault::PauseWindow{outage.start_sec, outage.duration_sec, outage.server});
  }
  schedule.merge(config_.faults);

  // ---- Shard layout: domains round-robin over max(1, min(S, D)) shards ----
  const int requested =
      config_.shard_count > 0 ? config_.shard_count : default_jobs();
  const int num_shards = std::max(1, std::min(requested, config_.num_domains));
  shards_.reserve(static_cast<std::size_t>(num_shards));

  dnscache::NsTtlBehavior ns_behavior;
  ns_behavior.min_accepted_sec = config_.ns_min_ttl_sec;
  dnscache::NsRetryPolicy ns_retry;
  ns_retry.initial_backoff_sec = config_.ns_retry_initial_backoff_sec;
  ns_retry.max_backoff_sec = config_.ns_retry_max_backoff_sec;

  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // One split per shard, in shard order, from the master stream: the
    // derivation depends only on (seed, shard index), never on worker
    // count or interleaving.
    shard->rng = rng_.split();
    for (int d = s; d < config_.num_domains; d += num_shards) {
      shard->domains.push_back(d);
    }

    int shard_clients = 0;
    for (int d : shard->domains) {
      shard_clients += domains_.clients[static_cast<std::size_t>(d)];
    }

    shard->sim = std::make_unique<sim::Simulator>();
    shard->sim->reserve(2 * static_cast<std::size_t>(shard_clients) + 64);

    // Each shard carries a full think-time table (domain ids are global);
    // scripted rate shifts fire only in the owning shard's simulator.
    shard->think = std::make_unique<workload::ThinkTimeModel>(domains_.mean_think_sec);
    for (const workload::RateShift& shift : config_.rate_shifts) {
      if (shift.domain % num_shards != s) continue;
      workload::ThinkTimeModel* think = shard->think.get();
      shard->sim->at(shift.at_sec, sim::assert_inline([think, shift] {
                       think->scale_rate(shift.domain, shift.rate_factor);
                     }));
    }
    // Trace events fire only in the owning shard, like rate_shifts: every
    // shard holds the full global trace but schedules just its slice.
    workload::schedule_trace(*shard->sim, *shard->think, config_.trace_events,
                             num_shards, s);

    // Full-capacity cluster replica: service times are exact; cross-shard
    // queueing contention is under-modeled (see class comment).
    shard->cluster = std::make_unique<web::Cluster>(*shard->sim, config_.cluster,
                                                    config_.num_domains, shard->rng);
    shard->fault =
        std::make_unique<fault::FaultInjector>(*shard->sim, *shard->cluster, schedule);
    shard->dispatcher = std::make_unique<web::DirectDispatcher>(*shard->cluster);

    shard->alarms = std::make_unique<core::AlarmRegistry>(
        shard->cluster->size(), config_.alarm_threshold, config_.alarm_enabled,
        config_.alarm_queue_threshold);
    shard->fault->set_alarm_registry(shard->alarms.get());
    if (config_.autoscale_enabled) {
      core::Autoscaler::Config ac;
      ac.high_watermark = config_.autoscale_high_watermark;
      ac.low_watermark = config_.autoscale_low_watermark;
      ac.hysteresis_ticks = config_.autoscale_hysteresis_ticks;
      ac.min_servers = config_.autoscale_min_servers;
      shard->autoscaler = std::make_unique<core::Autoscaler>(*shard->alarms, ac);
    }

    core::SchedulerFactoryConfig fc;
    fc.capacities = shard->cluster->capacities();
    fc.initial_weights =
        (config_.estimator_cold_start && !config_.oracle_weights)
            ? std::vector<double>(static_cast<std::size_t>(config_.num_domains), 1.0)
            : base.true_weights();
    fc.class_threshold = config_.effective_class_threshold();
    fc.reference_ttl = config_.reference_ttl_sec;
    fc.calibrate_ttl = config_.calibrate_ttl;
    fc.geo = geo_;
    shard->bundle =
        core::make_scheduler(config_.policy, fc, *shard->alarms, *shard->sim, shard->rng);

    const bool seed_from_model = config_.estimator_cold_start && !config_.oracle_weights;
    switch (config_.estimator_kind) {
      case EstimatorKind::kEwma:
        shard->estimator = std::make_unique<core::EwmaLoadEstimator>(
            *shard->bundle.domains, config_.estimator_smoothing, config_.oracle_weights,
            seed_from_model);
        break;
      case EstimatorKind::kSlidingWindow:
        shard->estimator = std::make_unique<core::SlidingWindowLoadEstimator>(
            *shard->bundle.domains, config_.estimator_window_count, config_.oracle_weights);
        break;
      case EstimatorKind::kHoltWinters:
        shard->estimator = std::make_unique<core::HoltWintersLoadEstimator>(
            *shard->bundle.domains, config_.estimator_smoothing, config_.estimator_trend,
            config_.oracle_weights, seed_from_model);
        break;
      case EstimatorKind::kAr:
        shard->estimator = std::make_unique<core::ArLoadEstimator>(
            *shard->bundle.domains, config_.estimator_ar_order, config_.oracle_weights);
        break;
    }

    shard->name_servers.reserve(shard->domains.size() *
                                static_cast<std::size_t>(config_.ns_per_domain));
    for (int d : shard->domains) {
      for (int m = 0; m < config_.ns_per_domain; ++m) {
        (void)m;
        shard->name_servers.push_back(std::make_unique<dnscache::NameServer>(
            *shard->sim, d, *shard->bundle.scheduler, ns_behavior));
        if (!shard->fault->dns_calendar().empty()) {
          shard->name_servers.back()->set_dns_outages(&shard->fault->dns_calendar(),
                                                      ns_retry);
        }
      }
    }

    sim::RngStream client_seeds = shard->rng.split();
    sim::RngStream stagger = shard->rng.split();
    shard->clients = std::make_unique<workload::ClientPool>(
        *shard->sim, *shard->dispatcher, config_.session, *shard->think, geo_.get(),
        config_.client_retry_delay_sec);
    shard->clients->reserve(static_cast<std::size_t>(shard_clients));
    for (std::size_t k = 0; k < shard->domains.size(); ++k) {
      const auto dd = static_cast<std::size_t>(shard->domains[k]);
      for (int c = 0; c < domains_.clients[dd]; ++c) {
        dnscache::NameServer& ns =
            *shard->name_servers[k * static_cast<std::size_t>(config_.ns_per_domain) +
                                 static_cast<std::size_t>(c % config_.ns_per_domain)];
        dnscache::Resolver* resolver = &ns;
        if (config_.client_cache_enabled) {
          shard->client_caches.push_back(
              std::make_unique<dnscache::ClientCache>(*shard->sim, ns));
          resolver = shard->client_caches.back().get();
        }
        const std::size_t idx = shard->clients->add(*resolver, client_seeds.split());
        shard->clients->start(idx, stagger.uniform(0.0, config_.mean_think_sec));
      }
    }

    // Cumulative busy time is 0 at t = 0, matching MonitorHub::start().
    shard->prev_busy.assign(static_cast<std::size_t>(shard->cluster->size()), 0.0);
    shards_.push_back(std::move(shard));
  }

  tracker_ = std::make_unique<MaxUtilizationTracker>(num_servers, config_.warmup_sec);
  setup_seconds_ = setup_watch.elapsed();
}

void ShardedSite::monitor_tick(double now) {
  // Merge phase — fixed shard order on the caller's thread. A server's
  // site-wide utilization is the sum of its replicas' busy fractions over
  // the tick (clamped at 1: replicas can overlap in time since each has
  // the full capacity); queue depths sum.
  const std::size_t num_servers = shards_.front()->prev_busy.size();
  std::vector<double> util(num_servers, 0.0);
  std::vector<std::size_t> queues(num_servers, 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < num_servers; ++i) {
      const double busy =
          shard->cluster->server(static_cast<int>(i)).cumulative_busy_time(now);
      util[i] += (busy - shard->prev_busy[i]) / config_.monitor_interval_sec;
      shard->prev_busy[i] = busy;
      queues[i] += shard->cluster->server(static_cast<int>(i)).queue_length();
    }
  }
  for (double& u : util) u = std::min(u, 1.0);

  // Every shard's alarm registry sees the same merged site view, so all
  // scheduler replicas agree on which servers are alarmed. The autoscaler
  // replicas observe the same view right after their registry, so every
  // shard reaches the same pool decision at the same tick.
  for (const auto& shard : shards_) {
    shard->alarms->observe_full(now, util, queues);
    if (shard->autoscaler) shard->autoscaler->observe(util);
  }
  tracker_->observe(now, util);

  if (!config_.oracle_weights && ++ticks_ % config_.estimator_collect_every_ticks == 0) {
    const double window_sec =
        config_.monitor_interval_sec * config_.estimator_collect_every_ticks;
    std::vector<std::uint64_t> total(static_cast<std::size_t>(config_.num_domains), 0);
    for (const auto& shard : shards_) {
      for (int s = 0; s < shard->cluster->size(); ++s) {
        const std::vector<std::uint64_t> part =
            shard->cluster->server(s).drain_domain_hits();
        for (std::size_t d = 0; d < total.size(); ++d) total[d] += part[d];
      }
    }
    // Identical feed to every estimator → identical domain weights in
    // every scheduler replica.
    for (const auto& shard : shards_) {
      shard->estimator->observe(total, window_sec);
    }
  }
}

RunResult ShardedSite::run(ParallelExecutor& executor) {
  if (ran_) throw std::logic_error("ShardedSite::run: a ShardedSite is single-use");
  ran_ = true;

  obs::Stopwatch phase_watch;
  double warmup_wall = 0.0;
  const double horizon = config_.warmup_sec + config_.duration_sec;
  const double interval = config_.monitor_interval_sec;

  // Phase-barrier loop: shards advance in parallel to the next monitor
  // tick (or the horizon), then the caller merges. Tick times accumulate
  // by repeated addition — the same float sequence MonitorHub's
  // after(interval) chaining produces.
  std::vector<std::function<void()>> tasks(shards_.size());
  double next_tick = interval;
  bool warmup_lapped = false;
  while (true) {
    const double target = std::min(next_tick, horizon);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard* shard = shards_[s].get();
      tasks[s] = [shard, target] { shard->sim->run_until(target); };
    }
    executor.run(tasks);
    if (!warmup_lapped && target >= config_.warmup_sec) {
      warmup_wall = phase_watch.lap();
      warmup_lapped = true;
    }
    // run_until is inclusive, so a tick landing exactly on the horizon
    // fires — the same boundary behavior as Site's final MonitorHub tick.
    if (next_tick <= horizon && target == next_tick) {
      monitor_tick(next_tick);
      next_tick += interval;
    }
    if (target >= horizon) break;
  }
  const double measurement_wall = phase_watch.lap();

  RunResult r = aggregate(horizon);
  r.profile.setup_sec = setup_seconds_;
  r.profile.warmup_sec = warmup_wall;
  r.profile.measurement_sec = measurement_wall;
  r.profile.collect_sec = phase_watch.lap();
  return r;
}

RunResult ShardedSite::run() {
  ParallelExecutor executor;
  return run(executor);
}

RunResult ShardedSite::aggregate(double horizon) {
  RunResult r;
  r.seed = config_.seed;
  r.max_util_cdf = tracker_->cdf();
  r.prob_below_090 = tracker_->prob_below(0.90);
  r.prob_below_098 = tracker_->prob_below(0.98);
  r.mean_max_utilization = tracker_->mean_max_utilization();
  r.max_util_ci_relative = tracker_->batch_means().relative_halfwidth();
  r.mean_server_util = tracker_->mean_utilizations();

  const std::vector<double>& cap = shards_.front()->cluster->capacities();
  const double total_cap = std::accumulate(cap.begin(), cap.end(), 0.0);
  for (std::size_t i = 0; i < cap.size(); ++i) {
    r.aggregate_utilization += r.mean_server_util[i] * cap[i] / total_cap;
  }

  double network_time = 0.0;
  sim::RunningStat ttl_stat;
  std::vector<sim::RunningStat> response(cap.size());
  sim::Histogram site_response(30.0, 3000);
  for (const auto& shard : shards_) {
    const workload::ClientPool::Totals totals = shard->clients->totals();
    r.total_pages += totals.pages;
    network_time += totals.network_time_sec;
    for (int s = 0; s < shard->cluster->size(); ++s) {
      const web::WebServer& server =
          static_cast<const web::Cluster&>(*shard->cluster).server(s);
      r.total_hits += server.hits_served();
      response[static_cast<std::size_t>(s)].merge(server.response_time());
      site_response.merge(server.response_histogram());
    }
    for (const auto& ns : shard->name_servers) {
      r.authoritative_queries += ns->authoritative_queries();
      r.ns_cache_hits += ns->cache_hits();
    }
    for (const auto& cc : shard->client_caches) r.client_cache_hits += cc->hits();
    ttl_stat.merge(shard->bundle.scheduler->ttl_stat());
    r.events_dispatched += shard->sim->events_dispatched();
    r.lost_pages += shard->cluster->total_lost_pages();
    r.lost_hits += shard->cluster->total_lost_hits();
    r.failed_requests += shard->cluster->total_lost_pages() +
                         shard->cluster->total_rejected_pages();
  }
  r.mean_network_rtt_sec =
      r.total_pages ? network_time / static_cast<double>(r.total_pages) : 0.0;
  r.address_request_rate = static_cast<double>(r.authoritative_queries) / horizon;
  r.dns_controlled_fraction =
      r.total_pages ? static_cast<double>(r.authoritative_queries) /
                          static_cast<double>(r.total_pages)
                    : 0.0;

  double response_weighted = 0.0;
  std::uint64_t response_pages = 0;
  for (const sim::RunningStat& rt : response) {
    r.per_server_response_sec.push_back(rt.mean());
    response_weighted += rt.mean() * static_cast<double>(rt.count());
    response_pages += rt.count();
  }
  r.mean_page_response_sec =
      response_pages ? response_weighted / static_cast<double>(response_pages) : 0.0;
  r.response_p50_sec = site_response.quantile(0.50);
  r.response_p95_sec = site_response.quantile(0.95);
  r.response_p99_sec = site_response.quantile(0.99);

  // ---- Latency as a first-class result (summed across the split
  // per-shard decision streams) ----
  if (geo_) {
    std::uint64_t decisions = 0;
    double rtt_total = 0.0;
    std::vector<double> per_server(cap.size(), 0.0);
    for (const auto& shard : shards_) {
      decisions += shard->bundle.scheduler->decisions();
      rtt_total += shard->bundle.scheduler->assignment_rtt_sum_sec();
      const std::vector<double>& part =
          shard->bundle.scheduler->per_server_assignment_rtt_sec();
      for (std::size_t i = 0; i < per_server.size(); ++i) per_server[i] += part[i];
    }
    if (decisions > 0) {
      r.mean_assignment_rtt_sec = rtt_total / static_cast<double>(decisions);
      r.rtt_weighted_assignment_share.resize(per_server.size(), 0.0);
      if (rtt_total > 0.0) {
        for (std::size_t i = 0; i < per_server.size(); ++i) {
          r.rtt_weighted_assignment_share[i] = per_server[i] / rtt_total;
        }
      }
    }
  }
  // Every domain's clients live in exactly one shard (round-robin layout),
  // so each per-domain histogram comes from its owning shard verbatim.
  const int num_shards = static_cast<int>(shards_.size());
  r.domain_latency.reserve(static_cast<std::size_t>(config_.num_domains));
  for (int d = 0; d < config_.num_domains; ++d) {
    const sim::Histogram& h =
        shards_[static_cast<std::size_t>(d % num_shards)]->clients
            ->domain_response_histogram(d);
    RunResult::DomainLatency dl;
    dl.pages = h.count();
    if (dl.pages > 0) {
      dl.p50_sec = h.quantile(0.50);
      dl.p95_sec = h.quantile(0.95);
      dl.p99_sec = h.quantile(0.99);
      dl.mean_sec = h.mean();
    }
    r.domain_latency.push_back(dl);
  }

  // ---- Elastic pool accounting: all replicas agree; report shard 0's ----
  r.pool_changes = shards_.front()->alarms->pool_changes();
  r.final_pool_size = shards_.front()->alarms->pool_size();
  if (shards_.front()->autoscaler) {
    r.autoscale_ups = shards_.front()->autoscaler->scale_up_actions();
    r.autoscale_downs = shards_.front()->autoscaler->scale_down_actions();
  }

  r.mean_ttl = ttl_stat.mean();
  // All alarm registries saw identical merged data; report shard 0's.
  r.alarm_signals = shards_.front()->alarms->alarm_signals() +
                    shards_.front()->alarms->normal_signals();
  r.dns_outage_sec = shards_.front()->fault->dns_calendar().outage_seconds(horizon);
  const double attempts =
      static_cast<double>(r.failed_requests) + static_cast<double>(r.total_pages);
  r.unavailability_fraction =
      attempts > 0 ? static_cast<double>(r.failed_requests) / attempts : 0.0;
  return r;
}

}  // namespace adattl::experiment
