#include "experiment/parallel_executor.h"

#include <algorithm>

#include "experiment/env_config.h"

namespace adattl::experiment {

int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw ? static_cast<int>(hw) : 1;
  return env_int("ADATTL_JOBS", fallback, 1, 512);
}

ParallelExecutor::ParallelExecutor(int jobs) : jobs_(std::max(1, jobs)) {
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ParallelExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || (batch_ && batch_id_ != seen); });
      if (stop_) return;
      seen = batch_id_;
      batch = batch_;
      ++active_workers_;
    }
    drain(batch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ParallelExecutor::drain(Batch* batch) {
  const std::size_t n = batch->tasks->size();
  for (;;) {
    const std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    std::exception_ptr err;
    try {
      (*batch->tasks)[i]();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (err && !batch->first_error) batch->first_error = err;
      --batch->pending;
    }
    done_cv_.notify_all();
  }
}

void ParallelExecutor::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (jobs_ == 1 || tasks.size() == 1) {
    // Legacy serial path: index order on the calling thread, exceptions
    // propagate from the failing task immediately.
    for (auto& task : tasks) task();
    return;
  }

  Batch batch;
  batch.tasks = &tasks;
  batch.pending = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
    ++batch_id_;
  }
  work_cv_.notify_all();
  drain(&batch);
  {
    // Wait until every task finished AND no worker still holds a pointer
    // to this stack-allocated batch (a late-woken worker may claim an
    // index past the end and exit without running anything).
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return batch.pending == 0 && active_workers_ == 0; });
    batch_ = nullptr;
  }
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

}  // namespace adattl::experiment
