#include "experiment/env_config.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace adattl::experiment {

bool parse_env_number(const char* text, double& out) {
  if (!text || !*text) return false;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  if (!std::isfinite(v)) return false;
  out = v;
  return true;
}

namespace {

/// nullopt-style lookup + validation shared by env_double / env_int.
bool env_number(const char* name, double& out) {
  const char* v = std::getenv(name);
  if (!v || !*v) return false;
  if (!parse_env_number(v, out)) {
    std::fprintf(stderr, "adattl: ignoring %s='%s' (not a number)\n", name, v);
    return false;
  }
  return true;
}

}  // namespace

double env_double(const char* name, double fallback, double lo, double hi) {
  double v = 0.0;
  if (!env_number(name, v)) return fallback;
  return std::clamp(v, lo, hi);
}

int env_int(const char* name, int fallback, int lo, int hi) {
  double v = 0.0;
  if (!env_number(name, v)) return fallback;
  if (v != std::floor(v)) {
    std::fprintf(stderr, "adattl: ignoring %s=%g (not an integer)\n", name, v);
    return fallback;
  }
  return std::clamp(static_cast<int>(v), lo, hi);
}

}  // namespace adattl::experiment
