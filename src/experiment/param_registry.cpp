#include "experiment/param_registry.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/policy_factory.h"
#include "experiment/scenario_file.h"
#include "fault/fault_schedule.h"

namespace adattl::experiment {

// Defined in runner.cpp; declared here to avoid a runner.h <-> param_registry.h cycle.
std::string json_escape(const std::string& s);

namespace {

// ---- strict value parsers (shared by CLI, env and scenario layers) ----

[[noreturn]] void bad(const std::string& msg) { throw std::invalid_argument(msg); }

double parse_double_value(const std::string& v) {
  if (v.empty()) bad("expected a number, got ''");
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') bad("expected a number, got '" + v + "'");
  if (!std::isfinite(out)) bad("expected a finite number, got '" + v + "'");
  return out;
}

long long parse_int_value(const std::string& v) {
  if (v.empty()) bad("expected an integer, got ''");
  errno = 0;
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') bad("expected an integer, got '" + v + "'");
  if (errno == ERANGE) bad("integer out of range: '" + v + "'");
  return out;
}

int parse_int32_value(const std::string& v) {
  const long long out = parse_int_value(v);
  if (out < INT_MIN || out > INT_MAX) bad("integer out of range: '" + v + "'");
  return static_cast<int>(out);
}

unsigned long long parse_uint_value(const std::string& v) {
  if (v.empty()) bad("expected a non-negative integer, got ''");
  if (v[0] == '-') bad("expected a non-negative integer, got '" + v + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long out = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    bad("expected a non-negative integer, got '" + v + "'");
  }
  if (errno == ERANGE) bad("integer out of range: '" + v + "'");
  return out;
}

bool parse_bool_value(const std::string& v) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  bad("expected true/false, got '" + v + "'");
}

std::vector<double> parse_double_list_value(const std::string& v) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t comma = v.find(',', start);
    const std::string item =
        v.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item.empty()) bad("empty list element");
    out.push_back(parse_double_value(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Splits a colon-packed spec into exactly `n` fields.
std::vector<std::string> split_colon(const std::string& v, std::size_t n, const char* shape) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t colon = v.find(':', start);
    fields.push_back(
        v.substr(start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (fields.size() != n) bad(std::string("expected ") + shape + ", got '" + v + "'");
  return fields;
}

// ---- canonical serialization (dump-config, config JSON, docs) ----

/// Shortest decimal text that parses back to exactly `v`.
std::string fmt_double(double v) {
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string fmt_int(long long v) { return std::to_string(v); }
std::string fmt_uint(unsigned long long v) { return std::to_string(v); }

std::string fmt_double_list(const std::vector<double>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ",";
    out += fmt_double(xs[i]);
  }
  return out;
}

const char* kind_name(ParamKind kind) {
  switch (kind) {
    case ParamKind::kBool: return "bool";
    case ParamKind::kInt: return "int";
    case ParamKind::kUint: return "uint";
    case ParamKind::kDouble: return "double";
    case ParamKind::kDoubleList: return "double-list";
    case ParamKind::kString: return "string";
    case ParamKind::kSpecList: return "spec-list";
  }
  return "?";
}

std::string derived_env_name(const std::string& name) {
  std::string env = "ADATTL_";
  for (char c : name) {
    env += (c == '-') ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return env;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = diag + (a[i - 1] != b[j - 1]);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
    }
  }
  return row[b.size()];
}

/// Cross-knob constraints: relations between fields that no single spec
/// owns. Per-knob range checks live on the specs themselves.
void cross_validate(const SimulationConfig& c) {
  c.cluster.validate();
  c.session.validate();
  for (const workload::RateShift& shift : c.rate_shifts) {
    if (shift.at_sec < 0) bad("config: rate shift in the past");
    if (shift.domain < 0 || shift.domain >= c.num_domains) {
      bad("config: rate shift for unknown domain");
    }
    if (shift.rate_factor <= 0) bad("config: rate shift factor must be > 0");
  }
  try {
    workload::validate_trace(c.trace_events, c.num_domains);
  } catch (const std::invalid_argument& e) {
    bad(std::string("config: ") + e.what());
  }
  for (const ServerOutage& outage : c.outages) {
    if (outage.start_sec < 0) bad("config: outage in the past");
    if (outage.duration_sec <= 0) bad("config: outage needs duration");
    if (outage.server < 0 || outage.server >= c.cluster.size()) {
      bad("config: outage for unknown server");
    }
  }
  c.faults.validate(c.cluster.size());
  if (c.ns_retry_max_backoff_sec < c.ns_retry_initial_backoff_sec) {
    bad("config: NS max backoff must be >= initial");
  }
  if (c.redirect_enabled && c.redirect_max_wait_sec <= 0) {
    bad("config: redirect max wait must be > 0");
  }
  if (c.geo_regions > 0 && (c.geo_intra_rtt_sec < 0 || c.geo_inter_rtt_sec < c.geo_intra_rtt_sec)) {
    bad("config: need 0 <= intra <= inter RTT");
  }
  if (core::policy_requires_geo(c.policy) && c.geo_regions == 0) {
    bad("config: the GEO/COST/COSTCAP policies need geo_regions > 0");
  }
  if (c.autoscale_enabled) {
    if (!(c.autoscale_low_watermark >= 0.0 &&
          c.autoscale_low_watermark < c.autoscale_high_watermark &&
          c.autoscale_high_watermark <= 1.0)) {
      bad("config: need 0 <= autoscale-low < autoscale-high <= 1");
    }
    if (c.autoscale_min_servers > c.cluster.size()) {
      bad("config: autoscale-min exceeds the cluster size");
    }
  }
  if (c.trace_enabled && c.trace_capacity < 1) {
    bad("config: trace capacity >= 1 when tracing");
  }
  if (c.shard_domains) {
    // Sharded runs replicate the cluster per shard; a redirecting
    // dispatcher needs global queue knowledge and the obs backends are
    // single-simulator, so both stay on the unsharded path.
    if (c.redirect_enabled) bad("config: shard-domains is incompatible with redirection");
    if (c.metrics_enabled || c.trace_enabled) {
      bad("config: shard-domains does not support metrics/event-trace");
    }
  }
}

}  // namespace

const char* param_layer_name(ParamLayer layer) {
  switch (layer) {
    case ParamLayer::kDefault: return "default";
    case ParamLayer::kCode: return "code";
    case ParamLayer::kScenario: return "scenario";
    case ParamLayer::kEnv: return "env";
    case ParamLayer::kCli: return "cli";
  }
  return "?";
}

void ParamRegistry::add(ParamSpec spec) {
  if (spec.env.empty() && spec.scope != ParamScope::kOutput && !spec.repeatable) {
    spec.env = derived_env_name(spec.name);
  }
  if (spec.env == "-") spec.env.clear();  // explicit "no env override" marker
  index_[spec.name] = specs_.size();
  specs_.push_back(std::move(spec));
}

ParamRegistry::ParamRegistry() {
  using C = CliOptions;
  using S = SimulationConfig;

  // Registration helpers: bind a knob of a given kind to a field. Checks
  // are attached per knob so every entry point (CLI, env, scenario file,
  // programmatic SimulationConfig::validate) rejects the same values with
  // the same message.
  auto check_cfg = [](bool (*ok)(const S&), const char* msg) {
    return [ok, msg](const C& o) {
      if (!ok(o.config)) bad(msg);
    };
  };

  auto dbl = [&](const char* name, const char* group, const char* hint, const char* doc,
                 double S::* m, std::function<void(const C&)> check = nullptr) {
    ParamSpec s;
    s.name = name;
    s.kind = ParamKind::kDouble;
    s.group = group;
    s.hint = hint;
    s.doc = doc;
    s.set = [m](C& o, const std::string& v) { o.config.*m = parse_double_value(v); };
    s.get = [m](const C& o) { return fmt_double(o.config.*m); };
    s.check = std::move(check);
    add(std::move(s));
  };
  auto integer = [&](const char* name, const char* group, const char* hint, const char* doc,
                     int S::* m, std::function<void(const C&)> check = nullptr) {
    ParamSpec s;
    s.name = name;
    s.kind = ParamKind::kInt;
    s.group = group;
    s.hint = hint;
    s.doc = doc;
    s.set = [m](C& o, const std::string& v) { o.config.*m = parse_int32_value(v); };
    s.get = [m](const C& o) { return fmt_int(o.config.*m); };
    s.check = std::move(check);
    add(std::move(s));
  };
  auto boolean = [&](const char* name, const char* group, const char* doc, bool S::* m) {
    ParamSpec s;
    s.name = name;
    s.kind = ParamKind::kBool;
    s.group = group;
    s.doc = doc;
    s.set = [m](C& o, const std::string& v) { o.config.*m = parse_bool_value(v); };
    s.get = [m](const C& o) { return o.config.*m ? "true" : "false"; };
    add(std::move(s));
  };

  // ---- workload ----
  integer("domains", "workload", "K", "number of client domains", &S::num_domains,
          check_cfg([](const S& c) { return c.num_domains >= 1; }, "config: need >= 1 domain"));
  integer("clients", "workload", "N", "total client population", &S::total_clients,
          check_cfg([](const S& c) { return c.total_clients >= 1; }, "config: need >= 1 client"));
  dbl("think", "workload", "SEC", "mean client think time between pages", &S::mean_think_sec,
      check_cfg([](const S& c) { return c.mean_think_sec > 0; },
                "config: think time must be > 0"));
  dbl("zipf-theta", "workload", "T", "Zipf skew of clients across domains", &S::zipf_theta,
      check_cfg([](const S& c) { return c.zipf_theta >= 0; },
                "config: zipf theta must be >= 0"));
  boolean("uniform", "workload", "uniform client-per-domain distribution (the paper's Ideal)",
          &S::uniform_clients);
  dbl("error", "workload", "PERCENT", "hidden-load perturbation the DNS is not told about",
      &S::rate_perturbation_percent,
      check_cfg([](const S& c) { return c.rate_perturbation_percent >= 0; },
                "config: perturbation >= 0"));
  dbl("scale", "workload", "X",
      "multiplies clients AND site capacity together (per-client load invariant)",
      &S::scale,
      check_cfg([](const S& c) { return c.scale > 0; }, "config: scale must be > 0"));

  // ---- site ----
  {
    ParamSpec s;
    s.name = "heterogeneity";
    s.kind = ParamKind::kInt;
    s.group = "site";
    s.hint = "0|20|35|50|65";
    s.doc = "Table 2 capacity preset; resolved into relative + total-capacity";
    s.in_dump = false;  // the resolved cluster is dumped via relative/total-capacity
    s.set = [](C& o, const std::string& v) {
      o.config.cluster = web::table2_cluster(parse_int32_value(v));
    };
    s.get = [](const C& o) { return fmt_double(o.config.cluster.heterogeneity_percent()); };
    add(std::move(s));
  }
  {
    ParamSpec s;
    s.name = "relative";
    s.kind = ParamKind::kDoubleList;
    s.group = "site";
    s.hint = "1,0.8,...";
    s.doc = "relative server capacities a_i = C_i/C_1, non-increasing";
    s.set = [](C& o, const std::string& v) {
      o.config.cluster.relative = parse_double_list_value(v);
    };
    s.get = [](const C& o) { return fmt_double_list(o.config.cluster.relative); };
    add(std::move(s));
  }
  {
    ParamSpec s;
    s.name = "total-capacity";
    s.kind = ParamKind::kDouble;
    s.group = "site";
    s.hint = "HITS_PER_SEC";
    s.doc = "total site capacity the relative shares scale to";
    s.set = [](C& o, const std::string& v) {
      o.config.cluster.total_capacity_hits_per_sec = parse_double_value(v);
    };
    s.get = [](const C& o) { return fmt_double(o.config.cluster.total_capacity_hits_per_sec); };
    add(std::move(s));
  }

  // ---- algorithm ----
  {
    ParamSpec s;
    s.name = "policy";
    s.kind = ParamKind::kString;
    s.group = "algorithm";
    s.hint = "NAME";
    s.doc =
        "scheduling algorithm (RR, RR2, DAL, MRL, PRR[2]-TTL/..., DRR[2]-TTL/S_..., GEO, "
        "COST(ALPHA), COSTCAP(SEC))";
    s.set = [](C& o, const std::string& v) { o.config.policy = v; };
    s.get = [](const C& o) { return o.config.policy; };
    s.check = [](const C& o) {
      if (o.config.policy.empty()) bad("config: no policy");
      try {
        core::validate_policy_name(o.config.policy);
      } catch (const std::invalid_argument& e) {
        bad(std::string("config: ") + e.what());
      }
    };
    add(std::move(s));
  }
  dbl("ttl", "algorithm", "SEC", "constant/reference TTL", &S::reference_ttl_sec,
      check_cfg([](const S& c) { return c.reference_ttl_sec > 0; },
                "config: reference TTL must be > 0"));
  dbl("class-threshold", "algorithm", "GAMMA", "hot/normal domain class threshold (0 = 1/K)",
      &S::class_threshold,
      check_cfg([](const S& c) { return c.class_threshold >= 0; },
                "config: class threshold must be >= 0"));
  boolean("calibration", "algorithm", "address-rate TTL fairness calibration (paper 4.1)",
          &S::calibrate_ttl);
  boolean("alarm", "algorithm", "utilization alarm feedback", &S::alarm_enabled);
  dbl("alarm-threshold", "algorithm", "U", "utilization level that raises an alarm",
      &S::alarm_threshold,
      check_cfg([](const S& c) { return c.alarm_threshold > 0 && c.alarm_threshold <= 1; },
                "config: alarm threshold must lie in (0, 1]"));
  {
    ParamSpec s;
    s.name = "queue-alarm";
    s.kind = ParamKind::kUint;
    s.group = "algorithm";
    s.hint = "PAGES";
    s.doc = "also alarm on queue backlog above this many pages (0 = off; detects outages)";
    s.set = [](C& o, const std::string& v) {
      o.config.alarm_queue_threshold = static_cast<std::size_t>(parse_uint_value(v));
    };
    s.get = [](const C& o) {
      return fmt_uint(static_cast<unsigned long long>(o.config.alarm_queue_threshold));
    };
    add(std::move(s));
  }
  dbl("monitor-interval", "algorithm", "SEC", "server state-collection period",
      &S::monitor_interval_sec,
      check_cfg([](const S& c) { return c.monitor_interval_sec > 0; },
                "config: monitor interval > 0"));

  // ---- estimation ----
  {
    ParamSpec s;
    s.name = "measured";
    s.kind = ParamKind::kBool;
    s.group = "estimation";
    s.doc = "estimate hidden loads online instead of oracle weights";
    s.set = [](C& o, const std::string& v) { o.config.oracle_weights = !parse_bool_value(v); };
    s.get = [](const C& o) { return o.config.oracle_weights ? "false" : "true"; };
    add(std::move(s));
  }
  {
    ParamSpec s;
    s.name = "estimator";
    s.kind = ParamKind::kString;
    s.group = "estimation";
    s.hint = "ewma|window|holt|ar";
    s.doc = "online estimator kind (smoothing, window, predictive level+trend, AR(p))";
    s.set = [](C& o, const std::string& v) {
      if (v == "ewma") {
        o.config.estimator_kind = EstimatorKind::kEwma;
      } else if (v == "window") {
        o.config.estimator_kind = EstimatorKind::kSlidingWindow;
      } else if (v == "holt") {
        o.config.estimator_kind = EstimatorKind::kHoltWinters;
      } else if (v == "ar") {
        o.config.estimator_kind = EstimatorKind::kAr;
      } else {
        bad("expected 'ewma', 'window', 'holt' or 'ar', got '" + v + "'");
      }
    };
    s.get = [](const C& o) {
      switch (o.config.estimator_kind) {
        case EstimatorKind::kEwma: return "ewma";
        case EstimatorKind::kSlidingWindow: return "window";
        case EstimatorKind::kHoltWinters: return "holt";
        case EstimatorKind::kAr: return "ar";
      }
      return "?";
    };
    add(std::move(s));
  }
  dbl("estimator-smoothing", "estimation", "ALPHA", "EWMA / Holt-Winters level smoothing factor",
      &S::estimator_smoothing,
      check_cfg([](const S& c) { return c.estimator_smoothing > 0 && c.estimator_smoothing <= 1; },
                "config: estimator smoothing must lie in (0, 1]"));
  integer("estimator-windows", "estimation", "N", "window count for the sliding-window estimator",
          &S::estimator_window_count,
          check_cfg([](const S& c) { return c.estimator_window_count >= 1; },
                    "config: estimator window count >= 1"));
  dbl("estimator-trend", "estimation", "BETA",
      "Holt-Winters trend smoothing factor (0 = no trend term)", &S::estimator_trend,
      check_cfg([](const S& c) { return c.estimator_trend >= 0 && c.estimator_trend <= 1; },
                "config: estimator trend must lie in [0, 1]"));
  integer("estimator-ar-order", "estimation", "P",
          "autoregressive order for the AR estimator", &S::estimator_ar_order,
          check_cfg(
              [](const S& c) { return c.estimator_ar_order >= 1 && c.estimator_ar_order <= 16; },
              "config: estimator AR order must lie in [1, 16]"));
  integer("estimator-collect-ticks", "estimation", "N",
          "collect server counters every N monitor ticks", &S::estimator_collect_every_ticks,
          check_cfg([](const S& c) { return c.estimator_collect_every_ticks >= 1; },
                    "config: estimator collection period >= 1 tick"));
  boolean("cold-start", "estimation", "start the estimator from uniform weights",
          &S::estimator_cold_start);

  // ---- resolvers ----
  dbl("min-ttl", "resolvers", "SEC", "non-cooperative NS minimum accepted TTL (0 = cooperative)",
      &S::ns_min_ttl_sec,
      check_cfg([](const S& c) { return c.ns_min_ttl_sec >= 0; }, "config: NS min TTL >= 0"));
  integer("ns-per-domain", "resolvers", "M", "name-server caches per domain", &S::ns_per_domain,
          check_cfg([](const S& c) { return c.ns_per_domain >= 1; },
                    "config: need >= 1 NS per domain"));
  boolean("client-cache", "resolvers", "per-client address caches on top of the NS caches",
          &S::client_cache_enabled);

  // ---- geography ----
  integer("geo-regions", "geography", "R", "regions (0 = the paper's latency-free model)",
          &S::geo_regions,
          check_cfg([](const S& c) { return c.geo_regions >= 0; }, "config: geo regions >= 0"));
  dbl("geo-intra", "geography", "SEC", "intra-region round-trip time", &S::geo_intra_rtt_sec);
  dbl("geo-inter", "geography", "SEC", "inter-region round-trip time", &S::geo_inter_rtt_sec);

  // ---- elasticity ----
  boolean("autoscale", "elasticity",
          "watermark autoscaler: sustained mean in-pool utilization beyond the "
          "watermarks adds/parks one server per action",
          &S::autoscale_enabled);
  dbl("autoscale-high", "elasticity", "U", "scale-up watermark (mean in-pool utilization)",
      &S::autoscale_high_watermark,
      check_cfg([](const S& c) {
        return c.autoscale_high_watermark > 0 && c.autoscale_high_watermark <= 1;
      }, "config: autoscale-high must lie in (0, 1]"));
  dbl("autoscale-low", "elasticity", "U", "scale-down watermark (mean in-pool utilization)",
      &S::autoscale_low_watermark,
      check_cfg([](const S& c) { return c.autoscale_low_watermark >= 0; },
                "config: autoscale-low must be >= 0"));
  integer("autoscale-ticks", "elasticity", "N",
          "consecutive out-of-band monitor ticks before an autoscale action",
          &S::autoscale_hysteresis_ticks,
          check_cfg([](const S& c) { return c.autoscale_hysteresis_ticks >= 1; },
                    "config: autoscale-ticks must be >= 1"));
  integer("autoscale-min", "elasticity", "N", "scale-down floor for the DNS pool size",
          &S::autoscale_min_servers,
          check_cfg([](const S& c) { return c.autoscale_min_servers >= 1; },
                    "config: autoscale-min must be >= 1"));

  // ---- redirection ----
  // `redirect` registers after its scalar companions on purpose: the
  // --redirect-wait setter implies redirect=true (documented CLI behavior),
  // so --dump-config must emit the bool after the scalars for a dump of a
  // redirect-free run to re-parse to redirect-free.
  {
    ParamSpec s;
    s.name = "redirect-wait";
    s.kind = ParamKind::kDouble;
    s.group = "redirection";
    s.hint = "SEC";
    s.doc = "redirect when estimated queue wait exceeds this (implies redirect=true)";
    s.set = [](C& o, const std::string& v) {
      o.config.redirect_enabled = true;
      o.config.redirect_max_wait_sec = parse_double_value(v);
    };
    s.get = [](const C& o) { return fmt_double(o.config.redirect_max_wait_sec); };
    add(std::move(s));
  }
  dbl("redirect-delay", "redirection", "SEC", "extra latency per redirected request",
      &S::redirect_delay_sec,
      check_cfg([](const S& c) { return c.redirect_delay_sec >= 0; },
                "config: redirect delay >= 0"));
  boolean("redirect", "redirection", "server-side second-level redirection",
          &S::redirect_enabled);

  // ---- dynamics ----
  {
    ParamSpec s;
    s.name = "shift";
    s.kind = ParamKind::kSpecList;
    s.group = "dynamics";
    s.hint = "T:DOMAIN:FACTOR";
    s.doc = "scripted flash crowd: multiply DOMAIN's rate by FACTOR at time T";
    s.repeatable = true;
    s.set = [](C& o, const std::string& v) {
      const auto f = split_colon(v, 3, "T:DOMAIN:FACTOR");
      workload::RateShift shift;
      shift.at_sec = parse_double_value(f[0]);
      shift.domain = parse_int32_value(f[1]);
      shift.rate_factor = parse_double_value(f[2]);
      o.config.rate_shifts.push_back(shift);
    };
    s.get_list = [](const C& o) {
      std::vector<std::string> out;
      for (const workload::RateShift& sh : o.config.rate_shifts) {
        out.push_back(fmt_double(sh.at_sec) + ":" + fmt_int(sh.domain) + ":" +
                      fmt_double(sh.rate_factor));
      }
      return out;
    };
    add(std::move(s));
  }
  {
    ParamSpec s;
    s.name = "trace-point";
    s.kind = ParamKind::kSpecList;
    s.group = "dynamics";
    s.hint = "T:DOMAIN:MULT";
    s.doc = "trace point: SET DOMAIN's rate multiplier to MULT at time T (absolute)";
    s.repeatable = true;
    s.set = [](C& o, const std::string& v) {
      const auto f = split_colon(v, 3, "T:DOMAIN:MULT");
      workload::TraceEvent ev;
      ev.at_sec = parse_double_value(f[0]);
      ev.domain = parse_int32_value(f[1]);
      ev.rate_multiplier = parse_double_value(f[2]);
      o.config.trace_events.push_back(ev);
    };
    s.get_list = [](const C& o) {
      std::vector<std::string> out;
      for (const workload::TraceEvent& ev : o.config.trace_events) {
        out.push_back(fmt_double(ev.at_sec) + ":" + fmt_int(ev.domain) + ":" +
                      fmt_double(ev.rate_multiplier));
      }
      return out;
    };
    add(std::move(s));
  }
  {
    ParamSpec s;
    s.name = "workload-trace";
    s.kind = ParamKind::kSpecList;
    s.group = "dynamics";
    s.hint = "FILE.csv";
    s.doc = "replay an arrival-rate trace (t_sec,domain,rate_multiplier CSV)";
    s.repeatable = true;
    s.in_dump = false;  // dumped expanded into trace-point lines above
    s.set = [](C& o, const std::string& v) {
      const std::vector<workload::TraceEvent> events = workload::load_trace_file(v);
      o.config.trace_events.insert(o.config.trace_events.end(), events.begin(),
                                   events.end());
    };
    s.get_list = [](const C&) { return std::vector<std::string>{}; };
    add(std::move(s));
  }
  {
    ParamSpec s;
    s.name = "outage";
    s.kind = ParamKind::kSpecList;
    s.group = "dynamics";
    s.hint = "START:DURATION:SERVER";
    s.doc = "legacy silent stall: the server queues but serves nothing";
    s.repeatable = true;
    s.set = [](C& o, const std::string& v) {
      const auto f = split_colon(v, 3, "START:DURATION:SERVER");
      ServerOutage outage;
      outage.start_sec = parse_double_value(f[0]);
      outage.duration_sec = parse_double_value(f[1]);
      outage.server = parse_int32_value(f[2]);
      o.config.outages.push_back(outage);
    };
    s.get_list = [](const C& o) {
      std::vector<std::string> out;
      for (const ServerOutage& w : o.config.outages) {
        out.push_back(fmt_double(w.start_sec) + ":" + fmt_double(w.duration_sec) + ":" +
                      fmt_int(w.server));
      }
      return out;
    };
    add(std::move(s));
  }

  // ---- faults ----
  {
    ParamSpec s;
    s.name = "faults";
    s.kind = ParamKind::kSpecList;
    s.group = "faults";
    s.hint = "FILE";
    s.doc = "merge a fault file (crash/degrade/pause/dns-outage lines)";
    s.repeatable = true;
    s.in_dump = false;  // dumped expanded into the window knobs below
    s.set = [](C& o, const std::string& v) { o.config.faults.merge(fault::load_fault_file(v)); };
    s.get_list = [](const C&) { return std::vector<std::string>{}; };
    add(std::move(s));
  }
  auto fault_windows = [&](const char* name, const char* hint, const char* doc, auto parse,
                           auto member, auto format) {
    ParamSpec s;
    s.name = name;
    s.kind = ParamKind::kSpecList;
    s.group = "faults";
    s.hint = hint;
    s.doc = doc;
    s.repeatable = true;
    s.set = [parse, member](C& o, const std::string& v) {
      (o.config.faults.*member).push_back(parse(v));
    };
    s.get_list = [member, format](const C& o) {
      std::vector<std::string> out;
      for (const auto& w : o.config.faults.*member) out.push_back(format(w));
      return out;
    };
    add(std::move(s));
  };
  fault_windows(
      "crash", "START:DURATION:SERVER",
      "hard crash: queue and in-flight work dropped, submissions rejected",
      &fault::FaultSchedule::parse_crash, &fault::FaultSchedule::crashes,
      [](const fault::CrashWindow& w) {
        return fmt_double(w.start_sec) + ":" + fmt_double(w.duration_sec) + ":" +
               fmt_int(w.server);
      });
  fault_windows(
      "degrade", "START:DURATION:SERVER:FACTOR",
      "scale the server's capacity by FACTOR for the window",
      &fault::FaultSchedule::parse_degrade, &fault::FaultSchedule::degradations,
      [](const fault::DegradeWindow& w) {
        return fmt_double(w.start_sec) + ":" + fmt_double(w.duration_sec) + ":" +
               fmt_int(w.server) + ":" + fmt_double(w.factor);
      });
  fault_windows(
      "pause", "START:DURATION:SERVER",
      "silent stall: accepts and queues but serves nothing",
      &fault::FaultSchedule::parse_pause, &fault::FaultSchedule::pauses,
      [](const fault::PauseWindow& w) {
        return fmt_double(w.start_sec) + ":" + fmt_double(w.duration_sec) + ":" +
               fmt_int(w.server);
      });
  fault_windows(
      "dns-outage", "START:DURATION",
      "authoritative DNS unreachable; NSs back off and serve stale",
      &fault::FaultSchedule::parse_dns_outage, &fault::FaultSchedule::dns_outages,
      [](const fault::DnsOutageWindow& w) {
        return fmt_double(w.start_sec) + ":" + fmt_double(w.duration_sec);
      });
  // Elastic pool directives. scale-up and scale-down share the schedule's
  // scale_events vector, so their specs filter by direction instead of
  // using the fault_windows helper (which would dump every event twice).
  auto scale_directive = [&](const char* name, bool up, const char* doc) {
    ParamSpec s;
    s.name = name;
    s.kind = ParamKind::kSpecList;
    s.group = "faults";
    s.hint = "START:SERVER";
    s.doc = doc;
    s.repeatable = true;
    s.set = [up](C& o, const std::string& v) {
      o.config.faults.scale_events.push_back(fault::FaultSchedule::parse_scale(v, up));
    };
    s.get_list = [up](const C& o) {
      std::vector<std::string> out;
      for (const fault::ScaleEvent& e : o.config.faults.scale_events) {
        if (e.up == up) out.push_back(fmt_double(e.start_sec) + ":" + fmt_int(e.server));
      }
      return out;
    };
    add(std::move(s));
  };
  scale_directive("scale-up", true,
                  "admit the server to the DNS pool (elastic membership, not a repair)");
  scale_directive("scale-down", false,
                  "remove the server from the DNS pool; it drains, losing nothing");
  fault_windows(
      "resize", "START:SERVER:FACTOR",
      "open-ended re-provision: capacity scaled to FACTOR x nominal until the next resize",
      &fault::FaultSchedule::parse_resize, &fault::FaultSchedule::resizes,
      [](const fault::ResizeEvent& e) {
        return fmt_double(e.start_sec) + ":" + fmt_int(e.server) + ":" + fmt_double(e.factor);
      });
  dbl("retry-delay", "faults", "SEC", "client pause before retrying a failed page/resolution",
      &S::client_retry_delay_sec,
      check_cfg([](const S& c) { return c.client_retry_delay_sec > 0; },
                "config: client retry delay must be > 0"));
  dbl("ns-retry-backoff", "faults", "SEC", "NS initial upstream retry backoff during outages",
      &S::ns_retry_initial_backoff_sec,
      check_cfg([](const S& c) { return c.ns_retry_initial_backoff_sec > 0; },
                "config: NS retry backoff must be > 0"));
  dbl("ns-retry-max-backoff", "faults", "SEC", "NS retry backoff cap",
      &S::ns_retry_max_backoff_sec);

  // ---- daemon (tools/adattl_dnsd; inert for simulations) ----
  integer("dnsd-port", "daemon", "PORT", "UDP port the live DNS daemon binds (0 = ephemeral)",
          &S::dnsd_port,
          check_cfg([](const S& c) { return c.dnsd_port >= 0 && c.dnsd_port <= 65535; },
                    "config: dnsd-port must be in [0, 65535]"));
  integer("dnsd-shards", "daemon", "N",
          "daemon worker shards (SO_REUSEPORT sockets with per-shard scheduler state)",
          &S::dnsd_shards,
          check_cfg([](const S& c) { return c.dnsd_shards >= 1 && c.dnsd_shards <= 256; },
                    "config: dnsd-shards must be in [1, 256]"));
  integer("dnsd-batch", "daemon", "N",
          "daemon recvmmsg/sendmmsg batch size (1 = plain recvmsg/sendto path)",
          &S::dnsd_batch,
          check_cfg([](const S& c) { return c.dnsd_batch >= 1 && c.dnsd_batch <= 1024; },
                    "config: dnsd-batch must be in [1, 1024]"));
  boolean("dnsd-ecs", "daemon",
          "derive the daemon's domain key from EDNS0 Client-Subnet (hash fallback)",
          &S::dnsd_ecs);

  // ---- observability ----
  boolean("metrics", "observability", "run-wide metrics registry (JSON gains \"metrics\")",
          &S::metrics_enabled);
  boolean("event-trace", "observability", "typed event-trace ring buffer", &S::trace_enabled);
  {
    ParamSpec s;
    s.name = "trace-capacity";
    s.kind = ParamKind::kUint;
    s.group = "observability";
    s.hint = "RECORDS";
    s.doc = "event-trace ring-buffer capacity";
    s.set = [](C& o, const std::string& v) {
      o.config.trace_capacity = static_cast<std::size_t>(parse_uint_value(v));
    };
    s.get = [](const C& o) {
      return fmt_uint(static_cast<unsigned long long>(o.config.trace_capacity));
    };
    add(std::move(s));
  }

  // ---- run ----
  {
    ParamSpec s;
    s.name = "duration";
    s.kind = ParamKind::kDouble;
    s.group = "run";
    s.hint = "SEC";
    s.doc = "measured period after warm-up";
    s.env = "ADATTL_DURATION_SEC";  // the long-standing bench knob name
    s.set = [](C& o, const std::string& v) { o.config.duration_sec = parse_double_value(v); };
    s.get = [](const C& o) { return fmt_double(o.config.duration_sec); };
    s.check = [](const C& o) {
      if (o.config.duration_sec <= 0) bad("config: duration > 0");
    };
    add(std::move(s));
  }
  dbl("warmup", "run", "SEC", "warm-up period excluded from statistics", &S::warmup_sec,
      check_cfg([](const S& c) { return c.warmup_sec >= 0; }, "config: warmup >= 0"));
  {
    ParamSpec s;
    s.name = "seed";
    s.kind = ParamKind::kUint;
    s.group = "run";
    s.hint = "N";
    s.doc = "master seed; replication i runs with seed + i";
    s.set = [](C& o, const std::string& v) {
      o.config.seed = static_cast<std::uint64_t>(parse_uint_value(v));
    };
    s.get = [](const C& o) {
      return fmt_uint(static_cast<unsigned long long>(o.config.seed));
    };
    add(std::move(s));
  }
  {
    ParamSpec s;
    s.name = "replications";
    s.kind = ParamKind::kInt;
    s.scope = ParamScope::kRun;
    s.group = "run";
    s.hint = "R";
    s.doc = "independent replications with derived seeds";
    s.set = [](C& o, const std::string& v) {
      o.replications = parse_int32_value(v);
      if (o.replications < 1) bad("need >= 1");
    };
    s.get = [](const C& o) { return fmt_int(o.replications); };
    s.check = [](const C& o) {
      if (o.replications < 1) bad("replications: need >= 1");
    };
    add(std::move(s));
  }
  {
    ParamSpec s;
    s.name = "jobs";
    s.kind = ParamKind::kInt;
    s.scope = ParamScope::kRun;
    s.group = "run";
    s.hint = "J";
    s.doc = "parallel workers (1 = serial; results identical either way)";
    s.in_dump = false;      // execution parallelism, not part of the run's identity
    s.in_manifest = false;  // must not vary report JSON across --jobs
    s.set = [](C& o, const std::string& v) {
      o.jobs = parse_int32_value(v);
      if (o.jobs < 1) bad("need >= 1");
    };
    s.get = [](const C& o) { return fmt_int(o.jobs); };
    add(std::move(s));
  }
  boolean("shard-domains", "run",
          "partition domains across parallel per-shard simulators (DESIGN.md §16)",
          &S::shard_domains);
  integer("shard-count", "run", "N",
          "shard pool size for --shard-domains (0 = one shard per ADATTL_JOBS worker)",
          &S::shard_count,
          check_cfg([](const S& c) { return c.shard_count >= 0 && c.shard_count <= 512; },
                    "config: shard count in [0, 512]"));

  // ---- output (CLI/scenario only: no env, never dumped) ----
  auto out_bool = [&](const char* name, const char* doc, bool C::* m) {
    ParamSpec s;
    s.name = name;
    s.kind = ParamKind::kBool;
    s.scope = ParamScope::kOutput;
    s.group = "output";
    s.doc = doc;
    s.in_dump = false;
    s.set = [m](C& o, const std::string& v) { o.*m = parse_bool_value(v); };
    s.get = [m](const C& o) { return o.*m ? "true" : "false"; };
    add(std::move(s));
  };
  auto out_path = [&](const char* name, const char* hint, const char* doc, std::string C::* m) {
    ParamSpec s;
    s.name = name;
    s.kind = ParamKind::kString;
    s.scope = ParamScope::kOutput;
    s.group = "output";
    s.hint = hint;
    s.doc = doc;
    s.in_dump = false;
    s.set = [m](C& o, const std::string& v) { o.*m = v; };
    s.get = [m](const C& o) { return o.*m; };
    add(std::move(s));
  };
  out_bool("csv", "emit CSV instead of aligned tables", &C::csv);
  out_bool("json", "emit one JSON object with headline metrics, config and provenance",
           &C::json);
  out_bool("cdf", "print the full max-utilization CDF curve", &C::show_cdf);
  out_path("trace", "FILE.csv", "per-tick utilization time series of the first replication",
           &C::trace_path);
  out_path("decisions", "FILE.csv", "every authoritative DNS decision of the first replication",
           &C::decisions_path);
  {
    ParamSpec s;
    s.name = "chrome-trace";
    s.kind = ParamKind::kString;
    s.scope = ParamScope::kOutput;
    s.group = "output";
    s.hint = "FILE.json";
    s.doc = "Chrome trace_event timeline of the first replication (implies event-trace=true)";
    s.in_dump = false;
    s.set = [](C& o, const std::string& v) {
      o.chrome_trace_path = v;
      o.config.trace_enabled = true;
    };
    s.get = [](const C& o) { return o.chrome_trace_path; };
    add(std::move(s));
  }
  out_bool("dump-config", "print the resolved run as a scenario file and exit",
           &C::dump_config);
  out_bool("dump-params-md", "print the generated knob reference (docs/CONFIG.md) and exit",
           &C::dump_params_md);
}

const ParamRegistry& ParamRegistry::instance() {
  static const ParamRegistry registry;
  return registry;
}

const ParamSpec* ParamRegistry::find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &specs_[it->second];
}

std::string ParamRegistry::suggest(const std::string& name) const {
  std::vector<std::string> corpus;
  for (const ParamSpec& s : specs_) {
    corpus.push_back(s.name);
    if (s.kind == ParamKind::kBool) corpus.push_back("no-" + s.name);
  }
  corpus.push_back("config");

  std::string best;
  std::size_t best_d = std::string::npos;
  for (const std::string& candidate : corpus) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_d) {
      best_d = d;
      best = candidate;
    }
  }
  const std::size_t threshold = std::max<std::size_t>(2, name.size() / 3);
  return best_d <= threshold ? best : std::string();
}

void ParamRegistry::apply_arg(ConfigResolution& r, const std::string& arg,
                              ParamLayer layer) const {
  if (arg.rfind("--", 0) != 0) {
    bad("unknown flag: '" + arg + "' (see --help text)");
  }
  std::string flag = arg;
  std::string value;
  bool has_value = false;
  const std::size_t eq = arg.find('=');
  if (eq != std::string::npos) {
    flag = arg.substr(0, eq);
    value = arg.substr(eq + 1);
    has_value = true;
  }
  const std::string name = flag.substr(2);

  // --config is consumed by the resolve() pipeline; one reaching a layer
  // application can only have come from inside a scenario file.
  if (name == "config") bad("scenario files cannot nest --config");

  bool negated = false;
  const ParamSpec* spec = find(name);
  if (!spec && name.rfind("no-", 0) == 0) {
    const ParamSpec* base = find(name.substr(3));
    if (base && base->kind == ParamKind::kBool) {
      spec = base;
      negated = true;
    }
  }
  if (!spec) {
    const std::string near = suggest(name);
    bad("unknown flag: '" + arg + "'" +
        (near.empty() ? " (see --help text)" : ", did you mean '--" + near + "'?"));
  }

  std::string effective;
  if (spec->kind == ParamKind::kBool) {
    if (negated) {
      if (has_value) bad(flag + ": negated flag takes no value");
      effective = "false";
    } else if (!has_value) {
      effective = "true";
    } else {
      effective = value;
    }
  } else {
    if (!has_value || value.empty()) {
      bad(flag + ": requires a value (" + flag + "=...)");
    }
    effective = value;
  }

  try {
    spec->set(r.options, effective);
  } catch (const std::invalid_argument& e) {
    bad(flag + ": " + e.what());
  }
  r.provenance[spec->name] = ParamProvenance{layer, effective};
}

ConfigResolution ParamRegistry::resolve(const std::vector<std::string>& cli_args) const {
  ConfigResolution r;

  // Layer 1: scenario files, wherever --config appears on the line.
  std::vector<std::string> rest;
  for (const std::string& arg : cli_args) {
    if (arg == "--config" || arg.rfind("--config=", 0) == 0) {
      const std::string path = arg.size() > 9 ? arg.substr(9) : std::string();
      if (path.empty()) bad("--config: requires a file path");
      for (const std::string& fa : load_scenario_file(path)) {
        apply_arg(r, fa, ParamLayer::kScenario);
      }
    } else {
      rest.push_back(arg);
    }
  }

  // Layer 2: ADATTL_* environment overrides.
  for (const ParamSpec& spec : specs_) {
    if (spec.env.empty()) continue;
    const char* v = std::getenv(spec.env.c_str());
    if (!v || !*v) continue;
    try {
      spec.set(r.options, v);
    } catch (const std::invalid_argument& e) {
      bad(spec.env + ": " + e.what());
    }
    r.provenance[spec.name] = ParamProvenance{ParamLayer::kEnv, v};
  }

  // Layer 3: command-line flags, in order.
  for (const std::string& arg : rest) {
    apply_arg(r, arg, ParamLayer::kCli);
  }

  validate(r.options);
  return r;
}

ConfigResolution ParamRegistry::resolve_flags(const std::vector<std::string>& flags) const {
  ConfigResolution r;
  for (const std::string& arg : flags) {
    apply_arg(r, arg, ParamLayer::kCli);
  }
  validate(r.options);
  return r;
}

void ParamRegistry::validate(const CliOptions& opt) const {
  for (const ParamSpec& spec : specs_) {
    if (spec.check) spec.check(opt);
  }
  cross_validate(opt.config);
}

std::string ParamRegistry::dump_scenario(const ConfigResolution& r) const {
  const auto layer_of = [&](const std::string& name) {
    const auto it = r.provenance.find(name);
    if (it != r.provenance.end()) return it->second.layer;
    // Fault windows merged via `faults = FILE` were set by the faults
    // knob; attribute the expanded crash/degrade/... lines to its layer.
    const ParamSpec* spec = find(name);
    if (spec && spec->repeatable && spec->group == "faults") {
      const auto f = r.provenance.find("faults");
      if (f != r.provenance.end()) return f->second.layer;
    }
    // Same for trace points loaded via `workload-trace = FILE`.
    if (name == "trace-point") {
      const auto t = r.provenance.find("workload-trace");
      if (t != r.provenance.end()) return t->second.layer;
    }
    return ParamLayer::kDefault;
  };
  const auto emit = [&](std::string& out, const std::string& name, const std::string& value,
                        ParamLayer layer) {
    std::string line = name + " = " + value;
    if (line.size() < 34) line.append(34 - line.size(), ' ');
    out += line + " # " + param_layer_name(layer) + "\n";
  };

  std::string out =
      "# adattl resolved run configuration, generated by --dump-config.\n"
      "# Precedence was: defaults < scenario file < ADATTL_* env < command line;\n"
      "# the trailing comment on each line names the layer that set the knob.\n"
      "# Re-run with: run_scenario --config=<this file>   (in a clean environment)\n";
  std::string group;
  std::string body;  // current group's lines; header emitted only if non-empty
  const auto flush_group = [&] {
    if (!body.empty()) {
      out += "\n# ---- " + group + " ----\n" + body;
      body.clear();
    }
  };
  for (const ParamSpec& spec : specs_) {
    if (spec.scope == ParamScope::kOutput || !spec.in_dump) continue;
    if (spec.group != group) {
      flush_group();
      group = spec.group;
    }
    if (spec.repeatable) {
      for (const std::string& v : spec.get_list(r.options)) {
        emit(body, spec.name, v, layer_of(spec.name));
      }
    } else {
      emit(body, spec.name, spec.get(r.options), layer_of(spec.name));
    }
  }
  flush_group();
  return out;
}

std::string ParamRegistry::config_json(const CliOptions& opt) const {
  std::string out = "{";
  bool first = true;
  for (const ParamSpec& spec : specs_) {
    if (spec.scope == ParamScope::kOutput || !spec.in_dump) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + spec.name + "\":";
    switch (spec.kind) {
      case ParamKind::kBool:
      case ParamKind::kInt:
      case ParamKind::kUint:
      case ParamKind::kDouble:
        out += spec.get(opt);
        break;
      case ParamKind::kString:
        out += "\"" + json_escape(spec.get(opt)) + "\"";
        break;
      case ParamKind::kDoubleList:
        // The canonical comma-joined form is already a JSON number list body.
        out += "[" + spec.get(opt) + "]";
        break;
      case ParamKind::kSpecList: {
        out += "[";
        const std::vector<std::string> items = spec.get_list(opt);
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (i) out += ",";
          out += "\"" + json_escape(items[i]) + "\"";
        }
        out += "]";
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::string ParamRegistry::provenance_json(const ProvenanceMap& provenance) const {
  std::string out = "{";
  bool first = true;
  for (const ParamSpec& spec : specs_) {
    if (spec.scope == ParamScope::kOutput || !spec.in_manifest) continue;
    const auto it = provenance.find(spec.name);
    if (it == provenance.end() || it->second.layer == ParamLayer::kDefault) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + spec.name + "\":{\"layer\":\"";
    out += param_layer_name(it->second.layer);
    out += "\",\"value\":\"" + json_escape(it->second.value) + "\"}";
  }
  out += "}";
  return out;
}

ProvenanceMap ParamRegistry::infer_provenance(const CliOptions& opt) const {
  const CliOptions defaults;
  ProvenanceMap out;
  for (const ParamSpec& spec : specs_) {
    if (spec.scope == ParamScope::kOutput || !spec.in_dump) continue;
    if (spec.repeatable) {
      const std::vector<std::string> now = spec.get_list(opt);
      if (now != spec.get_list(defaults)) {
        std::string joined;
        for (std::size_t i = 0; i < now.size(); ++i) {
          if (i) joined += " ";
          joined += now[i];
        }
        out[spec.name] = ParamProvenance{ParamLayer::kCode, joined};
      }
    } else {
      const std::string now = spec.get(opt);
      if (now != spec.get(defaults)) {
        out[spec.name] = ParamProvenance{ParamLayer::kCode, now};
      }
    }
  }
  return out;
}

std::string ParamRegistry::usage() const {
  const CliOptions defaults;
  std::string out =
      "usage: run_scenario [--flag[=value] ...]\n"
      "\n"
      "Knob precedence: defaults < --config=FILE scenario file < ADATTL_* env <\n"
      "command-line flags. Boolean knobs accept --X, --X=true|false and --no-X.\n"
      "Scenario files hold one `key = value` per line (keys = flag names,\n"
      "booleans take true/false, '#' after whitespace starts a comment).\n"
      "\n"
      "  scenario:\n"
      "    --config=FILE             load a scenario file (repeatable)\n"
      "    --help                    this text\n";
  std::string group;
  for (const ParamSpec& spec : specs_) {
    if (spec.group != group) {
      group = spec.group;
      out += "  " + group + ":\n";
    }
    std::string left = "    --" + spec.name;
    if (spec.kind != ParamKind::kBool) left += "=" + spec.hint;
    if (left.size() < 30) left.append(30 - left.size(), ' ');
    out += left + " " + spec.doc;
    if (spec.repeatable) {
      out += " (repeatable)";
    } else if (spec.scope != ParamScope::kOutput) {
      out += " (default " + spec.get(defaults) + ")";
    }
    out += "\n";
  }
  return out;
}

std::string ParamRegistry::params_markdown() const {
  const CliOptions defaults;
  std::string out =
      "# Configuration reference\n"
      "\n"
      "<!-- Generated by `run_scenario --dump-params-md` from the parameter\n"
      "     registry (src/experiment/param_registry.cpp). Do not edit by hand;\n"
      "     CI fails when this file drifts from the registry. -->\n"
      "\n"
      "Every knob is declared exactly once, in `src/experiment/param_registry.cpp`.\n"
      "The same table drives the CLI flags, the `ADATTL_*` environment overrides,\n"
      "scenario-file keys, `--help`, `--dump-config`, this document, and the\n"
      "resolved-config + provenance blocks embedded in runner JSON and sweep\n"
      "manifests.\n"
      "\n"
      "Resolution precedence (later wins): **defaults** < **scenario file**\n"
      "(`--config=FILE`, wherever it appears on the command line) < **environment**\n"
      "< **command line**. Boolean knobs accept `--X`, `--X=true|false` and\n"
      "`--no-X`; in scenario files every knob is a `key = value` line (booleans:\n"
      "`true`/`false`). A `#` at the start of a line or preceded by whitespace\n"
      "starts a comment, so values such as `chaos#1.faults` survive intact.\n";
  std::string group;
  for (const ParamSpec& spec : specs_) {
    if (spec.group != group) {
      group = spec.group;
      out += "\n## " + group + "\n\n";
      out += "| Knob | Type | Default | Env | Description |\n";
      out += "|---|---|---|---|---|\n";
    }
    std::string def;
    if (spec.repeatable) {
      def = "*(none)*";
    } else if (spec.scope == ParamScope::kOutput) {
      def = spec.kind == ParamKind::kBool ? "`false`" : "*(unset)*";
    } else {
      def = "`" + spec.get(defaults) + "`";
    }
    out += "| `" + spec.name + "` | " + kind_name(spec.kind) + " | " + def + " | " +
           (spec.env.empty() ? "—" : "`" + spec.env + "`") + " | " + spec.doc +
           (spec.repeatable ? " *(repeatable)*" : "") + " |\n";
  }
  return out;
}

ConfigResolution resolve_config(const std::vector<std::string>& args) {
  return ParamRegistry::instance().resolve(args);
}

}  // namespace adattl::experiment
