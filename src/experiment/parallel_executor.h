#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adattl::experiment {

/// Worker count for parallel sweeps: the ADATTL_JOBS environment variable
/// (strictly parsed, clamped to [1, 512]), defaulting to
/// std::thread::hardware_concurrency(). 1 selects the legacy serial path —
/// no threads are created at all.
int default_jobs();

/// Small fixed-size thread pool for fanning independent simulation runs
/// (one Site::run() per task) across cores.
///
/// A batch is a vector of thunks; workers claim indices from an atomic
/// cursor, so tasks may execute in any order and interleaving. Determinism
/// is the *caller's* contract: each task writes its result into its own
/// pre-allocated slot, which makes the output identical to running the
/// batch serially in index order. With jobs() == 1, run() executes the
/// batch in index order on the calling thread — byte-for-byte the old
/// serial loop.
class ParallelExecutor {
 public:
  explicit ParallelExecutor(int jobs = default_jobs());
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  int jobs() const { return jobs_; }

  /// Runs every task to completion; the calling thread participates, so a
  /// pool of J jobs uses J-1 workers plus the caller. If tasks throw, the
  /// first exception (in completion order) is rethrown after the whole
  /// batch drains. Not reentrant from inside a task.
  void run(std::vector<std::function<void()>> tasks);

 private:
  struct Batch {
    std::vector<std::function<void()>>* tasks = nullptr;
    std::atomic<std::size_t> next{0};
    std::size_t pending = 0;             // tasks not yet finished (mutex_)
    std::exception_ptr first_error;      // (mutex_)
  };

  void worker_loop();
  void drain(Batch* batch);

  const int jobs_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a new batch or stop_
  std::condition_variable done_cv_;  // run(): batch drained and released
  Batch* batch_ = nullptr;
  std::uint64_t batch_id_ = 0;  // bumped per batch so workers never rejoin one
  std::size_t active_workers_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adattl::experiment
