#pragma once

#include <string>
#include <vector>

#include "experiment/config.h"

namespace adattl::experiment {

/// What a command-line invocation asked for: the simulation itself plus
/// presentation options. Every field is bound to a ParamSpec in
/// param_registry.cpp — that table is the single source of truth for knob
/// names, parsing, documentation and validation.
struct CliOptions {
  SimulationConfig config;
  int replications = 1;
  /// Worker threads for the replication sweep; 0 = the ADATTL_JOBS
  /// environment default (hardware_concurrency if unset), 1 = serial.
  int jobs = 0;
  bool csv = false;       ///< emit CSV instead of aligned tables
  bool json = false;      ///< emit one JSON object with the headline metrics
  bool show_cdf = false;  ///< print the full max-utilization CDF curve
  /// Write the per-tick utilization time series of the first replication
  /// to this CSV file (empty = no trace).
  std::string trace_path;
  /// Write every authoritative DNS decision of the first replication to
  /// this CSV file (empty = no decision log).
  std::string decisions_path;
  /// Write the first replication's event trace as Chrome trace_event JSON
  /// to this file (empty = no trace). Implies config.trace_enabled.
  std::string chrome_trace_path;
  /// Print the fully resolved run as a scenario file and exit (no run).
  bool dump_config = false;
  /// Print the generated knob reference (docs/CONFIG.md) and exit.
  bool dump_params_md = false;
};

/// Parses `--key[=value]` style arguments into CliOptions through the
/// parameter registry's precedence pipeline: defaults < scenario files
/// (`--config=FILE`, wherever it appears) < `ADATTL_*` environment
/// overrides < command-line flags in order. Boolean knobs accept `--X`,
/// `--X=true|false` and `--no-X`. Unknown flags or malformed values throw
/// std::invalid_argument naming the offending source, with a did-you-mean
/// suggestion for near-miss names. The full knob list lives in
/// param_registry.cpp and is rendered by cli_usage() / docs/CONFIG.md.
CliOptions parse_cli(const std::vector<std::string>& args);

/// Human-readable usage text for run_scenario-style binaries, generated
/// from the parameter registry.
std::string cli_usage();

}  // namespace adattl::experiment
