#pragma once

#include <string>
#include <vector>

#include "experiment/config.h"

namespace adattl::experiment {

/// What a command-line invocation asked for: the simulation itself plus
/// presentation options.
struct CliOptions {
  SimulationConfig config;
  int replications = 1;
  /// Worker threads for the replication sweep; 0 = the ADATTL_JOBS
  /// environment default (hardware_concurrency if unset), 1 = serial.
  int jobs = 0;
  bool csv = false;       ///< emit CSV instead of aligned tables
  bool json = false;      ///< emit one JSON object with the headline metrics
  bool show_cdf = false;  ///< print the full max-utilization CDF curve
  /// Write the per-tick utilization time series of the first replication
  /// to this CSV file (empty = no trace).
  std::string trace_path;
  /// Write every authoritative DNS decision of the first replication to
  /// this CSV file (empty = no decision log).
  std::string decisions_path;
  /// Write the first replication's event trace as Chrome trace_event JSON
  /// to this file (empty = no trace). Implies config.trace_enabled.
  std::string chrome_trace_path;
};

/// Parses `--key=value` style arguments into CliOptions. Unknown flags or
/// malformed values throw std::invalid_argument with a message naming the
/// offending argument. Supported flags (all optional):
///
///   --policy=NAME            scheduling algorithm (default RR)
///   --heterogeneity=P        Table 2 preset: 0/20/35/50/65
///   --relative=1,0.8,...     custom relative capacities (overrides preset)
///   --total-capacity=H       total hits/s (default 500)
///   --domains=K --clients=N --think=SEC --zipf-theta=T
///   --uniform                uniform client distribution (Ideal workload)
///   --error=P                hidden-load perturbation percent
///   --min-ttl=SEC            non-cooperative NS minimum accepted TTL
///   --ns-per-domain=M        name-server caches per domain (default 1)
///   --ttl=SEC                constant/reference TTL (default 240)
///   --alarm-threshold=U      alarm threshold (default 0.9); --no-alarm
///   --no-calibration         disable address-rate TTL calibration
///   --measured               estimate weights online instead of oracle
///   --estimator=ewma|window  estimator kind; --cold-start
///   --client-cache           enable per-client address caches
///   --duration=SEC --warmup=SEC --seed=N --replications=R
///   --jobs=J                 parallel workers (default ADATTL_JOBS/auto;
///                            1 = serial; results identical either way)
///   --csv --json --cdf --trace=FILE.csv
///   --metrics                enable the run metrics registry (JSON output
///                            then carries a "metrics" object)
///   --chrome-trace=FILE      write the first replication's event timeline
///                            as Chrome trace_event JSON (chrome://tracing)
///   --shift=T:DOMAIN:FACTOR  scripted flash crowd (repeatable): at time T
///                            multiply DOMAIN's request rate by FACTOR
CliOptions parse_cli(const std::vector<std::string>& args);

/// Human-readable usage text for run_scenario-style binaries.
std::string cli_usage();

}  // namespace adattl::experiment
