#include "experiment/scenario_file.h"

#include <cstdio>
#include <stdexcept>

namespace adattl::experiment {
namespace {

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

/// A '#' starts a comment only at the start of the line or after
/// whitespace, so values containing '#' (e.g. a faults path like
/// "chaos#1.faults") survive intact.
std::size_t comment_start(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' && (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) return i;
  }
  return std::string::npos;
}

}  // namespace

std::vector<std::string> scenario_text_to_args(const std::string& text) {
  std::vector<std::string> args;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = (eol == std::string::npos) ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = comment_start(line);
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                                  ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("scenario line " + std::to_string(line_no) + ": empty key");
    }
    if (value.empty()) {
      throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                                  ": empty value for '" + key + "'");
    }

    // Every line becomes "--key=value" verbatim; the parameter registry
    // owns key lookup, typing (including booleans — `key = false` now
    // genuinely switches a default-on knob off) and did-you-mean
    // diagnostics for unknown keys.
    args.push_back("--" + key + "=" + value);
  }
  return args;
}

std::vector<std::string> load_scenario_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open scenario file '" + path + "'");
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return scenario_text_to_args(text);
}

}  // namespace adattl::experiment
