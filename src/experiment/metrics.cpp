#include "experiment/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace adattl::experiment {

MaxUtilizationTracker::MaxUtilizationTracker(int num_servers, sim::SimTime warmup_end,
                                             int cdf_bins, std::size_t batch_ticks)
    : warmup_end_(warmup_end),
      cdf_(cdf_bins),
      batches_(batch_ticks),
      per_server_(static_cast<std::size_t>(num_servers)) {
  if (num_servers <= 0) throw std::invalid_argument("MaxUtilizationTracker: need servers");
}

void MaxUtilizationTracker::observe(sim::SimTime now, const std::vector<double>& utilizations) {
  // Measured period is [warmup_end, horizon]: the sample taken exactly at
  // the warm-up boundary belongs to the measurement (closed on the left).
  // `<=` here silently dropped one tick per run — see DESIGN.md §11.
  if (now < warmup_end_) return;
  if (utilizations.size() != per_server_.size()) {
    throw std::invalid_argument("MaxUtilizationTracker: size mismatch");
  }
  double mx = 0.0;
  for (std::size_t i = 0; i < utilizations.size(); ++i) {
    per_server_[i].add(utilizations[i]);
    mx = std::max(mx, utilizations[i]);
  }
  cdf_.add(mx);
  max_stat_.add(mx);
  batches_.add(mx);
}

std::vector<double> MaxUtilizationTracker::mean_utilizations() const {
  std::vector<double> out(per_server_.size());
  for (std::size_t i = 0; i < per_server_.size(); ++i) out[i] = per_server_[i].mean();
  return out;
}

double MaxUtilizationTracker::mean_aggregate_utilization() const {
  // Equal-capacity-weighted mean would need capacities; the plain mean over
  // servers of mean utilization is the paper's "average system utilization"
  // only under equal weighting, so callers that need the capacity-weighted
  // figure compute it from mean_utilizations() and the cluster spec.
  double sum = 0.0;
  for (const auto& s : per_server_) sum += s.mean();
  return per_server_.empty() ? 0.0 : sum / static_cast<double>(per_server_.size());
}

}  // namespace adattl::experiment
