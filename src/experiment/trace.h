#pragma once

#include <string>
#include <vector>

#include "sim/time.h"
#include "web/monitor_hub.h"

namespace adattl::experiment {

/// One monitor tick of a recorded run.
struct TraceSample {
  sim::SimTime time = 0.0;
  std::vector<double> utilizations;  // index == ServerId
  double max_utilization = 0.0;
};

/// Records the per-tick utilization time series of a run — the raw data
/// behind every figure — and exports it as CSV for external plotting.
///
/// Attach to a Site's MonitorHub before run(); samples arrive on the same
/// 8-second clock as the alarms and metrics.
class TraceRecorder {
 public:
  /// `max_samples` caps memory for very long runs (0 = unlimited); when
  /// the cap is hit, further samples are dropped and dropped_count() grows.
  explicit TraceRecorder(std::size_t max_samples = 0);

  /// Registers this recorder on a monitor hub.
  void attach(web::MonitorHub& hub);

  /// Direct feed (tests, custom wiring).
  void observe(sim::SimTime now, const std::vector<double>& utilizations);

  const std::vector<TraceSample>& samples() const { return samples_; }
  std::size_t dropped_count() const { return dropped_; }

  /// CSV with header "time,s0,s1,...,max"; one row per tick.
  std::string to_csv() const;

  /// Writes to_csv() to a file; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::size_t max_samples_;
  std::vector<TraceSample> samples_;
  std::size_t dropped_ = 0;
};

}  // namespace adattl::experiment
