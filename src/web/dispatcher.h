#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "web/cluster.h"

namespace adattl::web {

/// Where a client's page request enters the server side. The plain
/// dispatcher hands the page to the DNS-chosen server; the redirecting
/// dispatcher adds the second-level mechanism of the authors' follow-up
/// work (server-side request redirection): an overloaded server passes
/// the request on instead of queueing it.
class PageDispatcher {
 public:
  virtual ~PageDispatcher() = default;

  /// Delivers one page to `target` (or wherever redirection sends it).
  virtual void dispatch(ServerId target, PageRequest request) = 0;
};

/// Direct delivery — the paper's model: the DNS decision is final.
class DirectDispatcher : public PageDispatcher {
 public:
  explicit DirectDispatcher(Cluster& cluster) : cluster_(cluster) {}

  void dispatch(ServerId target, PageRequest request) override {
    cluster_.server(target).submit_page(std::move(request));
  }

 private:
  Cluster& cluster_;
};

/// Server-side redirection (extension; cf. the authors' ICDCS'99/TOIT
/// follow-ups on "request redirection"): if the target server's backlog
/// exceeds `max_wait_sec` of estimated work, the request is forwarded to
/// the server with the least normalized backlog. A request is redirected
/// at most once (no ping-pong), and each redirection costs
/// `redirect_delay_sec` of extra latency before the page is enqueued
/// (modeling the extra network hop; with a geo model this would be the
/// inter-server RTT — a flat cost keeps the knob independent).
///
/// Redirection acts on the *queue the DNS cannot see*, so it composes
/// with any DNS policy; the redirection ablation measures how much of the
/// adaptive-TTL gap this second-level mechanism closes.
class RedirectingDispatcher : public PageDispatcher {
 public:
  RedirectingDispatcher(sim::Simulator& sim, Cluster& cluster, double max_wait_sec,
                        double redirect_delay_sec, double mean_hits_per_page);

  void dispatch(ServerId target, PageRequest request) override;

  std::uint64_t redirects() const { return redirects_; }
  std::uint64_t direct_deliveries() const { return direct_; }

  /// Estimated seconds of work queued at a server (backlog hits / C_i).
  double backlog_sec(ServerId s) const;

 private:
  /// Least-backlog non-crashed server, or -1 when the whole site is down.
  ServerId least_loaded() const;

  sim::Simulator& sim_;
  Cluster& cluster_;
  double max_wait_sec_;
  double redirect_delay_sec_;
  double mean_hits_per_page_;
  std::uint64_t redirects_ = 0;
  std::uint64_t direct_ = 0;
};

}  // namespace adattl::web
