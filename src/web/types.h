#pragma once

#include <cstdint>
#include <functional>

namespace adattl::web {

/// Index of a Web server within the distributed site, 0-based; servers are
/// numbered in decreasing capacity (S_1 is index 0), matching the paper.
using ServerId = int;

/// Index of a client domain, 0-based; domains are numbered in decreasing
/// popularity (domain 0 is the busiest under Zipf rank 1).
using DomainId = int;

/// One page request: a burst of `hits` HTTP hits (the HTML page plus its
/// embedded objects) served back-to-back by one server.
struct PageRequest {
  DomainId domain = 0;
  int hits = 1;
  /// Invoked when the last hit of the page has been served.
  std::function<void()> on_complete;
};

}  // namespace adattl::web
