#pragma once

#include <cstdint>
#include <functional>

namespace adattl::web {

/// Index of a Web server within the distributed site, 0-based; servers are
/// numbered in decreasing capacity (S_1 is index 0), matching the paper.
using ServerId = int;

/// Index of a client domain, 0-based; domains are numbered in decreasing
/// popularity (domain 0 is the busiest under Zipf rank 1).
using DomainId = int;

/// One page request: a burst of `hits` HTTP hits (the HTML page plus its
/// embedded objects) served back-to-back by one server.
struct PageRequest {
  DomainId domain = 0;
  int hits = 1;
  /// Invoked when the last hit of the page has been served.
  std::function<void()> on_complete;
  /// Invoked instead of on_complete when the page is lost: the target
  /// server rejects the submission (crashed) or drops the page mid-service
  /// (crash while queued or in flight). Null = the loss is silent (the
  /// server-side counters still record it). Callbacks must not resubmit
  /// synchronously; schedule a retry through the simulator.
  std::function<void()> on_fail;

  PageRequest() = default;
  PageRequest(DomainId d, int h, std::function<void()> complete = nullptr,
              std::function<void()> fail = nullptr)
      : domain(d), hits(h), on_complete(std::move(complete)), on_fail(std::move(fail)) {}
};

}  // namespace adattl::web
