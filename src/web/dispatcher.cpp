#include "web/dispatcher.h"

#include <stdexcept>

namespace adattl::web {

RedirectingDispatcher::RedirectingDispatcher(sim::Simulator& sim, Cluster& cluster,
                                             double max_wait_sec, double redirect_delay_sec,
                                             double mean_hits_per_page)
    : sim_(sim),
      cluster_(cluster),
      max_wait_sec_(max_wait_sec),
      redirect_delay_sec_(redirect_delay_sec),
      mean_hits_per_page_(mean_hits_per_page) {
  if (max_wait_sec <= 0) throw std::invalid_argument("redirection: max wait must be > 0");
  if (redirect_delay_sec < 0) throw std::invalid_argument("redirection: delay must be >= 0");
  if (mean_hits_per_page <= 0) throw std::invalid_argument("redirection: bad mean page size");
}

double RedirectingDispatcher::backlog_sec(ServerId s) const {
  // Queue length in pages x mean hits per page / capacity: the expected
  // wait a newly queued page faces. Uses the true instantaneous queue —
  // servers know their own backlog exactly (unlike the DNS).
  const WebServer& server = cluster_.server(s);
  return static_cast<double>(server.queue_length()) * mean_hits_per_page_ /
         server.capacity();
}

ServerId RedirectingDispatcher::least_loaded() const {
  // Crashed peers are skipped — a live server never forwards to one it
  // knows is dead (their empty queues would otherwise always win).
  ServerId best = -1;
  double best_backlog = 0.0;
  for (int s = 0; s < cluster_.size(); ++s) {
    if (cluster_.server(s).crashed()) continue;
    const double b = backlog_sec(s);
    if (best < 0 || b < best_backlog) {
      best = s;
      best_backlog = b;
    }
  }
  return best;
}

void RedirectingDispatcher::dispatch(ServerId target, PageRequest request) {
  if (backlog_sec(target) > max_wait_sec_) {
    const ServerId alternative = least_loaded();  // -1 when every server is down
    if (alternative >= 0 && alternative != target) {
      ++redirects_;
      // One extra hop; never redirected again (the alternative queues it
      // whatever its state — no ping-pong).
      // Largest capture the kernel schedules: this + ServerId + PageRequest.
      // InlineCallback::kInlineSize is sized for it; the assert keeps it so.
      sim_.after(redirect_delay_sec_,
                 sim::assert_inline([this, alternative, req = std::move(request)]() mutable {
                   cluster_.server(alternative).submit_page(std::move(req));
                 }));
      return;
    }
  }
  ++direct_;
  cluster_.server(target).submit_page(std::move(request));
}

}  // namespace adattl::web
