#include "web/web_server.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace adattl::web {

WebServer::WebServer(sim::Simulator& sim, ServerId id, double capacity_hits_per_sec,
                     int num_domains, sim::RngStream rng)
    : sim_(sim),
      id_(id),
      capacity_(capacity_hits_per_sec),
      rng_(rng),
      window_hits_(static_cast<std::size_t>(num_domains), 0),
      lifetime_hits_(static_cast<std::size_t>(num_domains), 0) {
  if (capacity_hits_per_sec <= 0) throw std::invalid_argument("WebServer: capacity must be > 0");
  if (num_domains <= 0) throw std::invalid_argument("WebServer: num_domains must be >= 1");
}

void WebServer::submit_page(PageRequest req) {
  if (req.hits <= 0) throw std::invalid_argument("WebServer: page must carry >= 1 hit");
  const auto d = static_cast<std::size_t>(req.domain);
  if (d >= window_hits_.size()) throw std::out_of_range("WebServer: unknown domain");

  if (crashed_) {
    // A crashed server never sees the demand: no hit accounting, so the
    // estimator cannot attribute hidden load to a dead server.
    ++rejected_pages_;
    obs_failed_.inc();
    if (tracer_) tracer_->record(sim_.now(), obs::TraceKind::kRequestFailed, req.domain, id_);
    if (req.on_fail) req.on_fail();
    return;
  }

  // Load is accounted at arrival: this is when the mapping decision made by
  // the DNS manifests as demand on this server.
  window_hits_[d] += static_cast<std::uint64_t>(req.hits);
  lifetime_hits_[d] += static_cast<std::uint64_t>(req.hits);

  queue_.push_back(Job{std::move(req), sim_.now()});
  update_queue_gauge();
  if (!busy_ && !paused_) start_next();
}

void WebServer::set_paused(bool paused) {
  if (tracer_ && paused != paused_) {
    tracer_->record(sim_.now(), paused ? obs::TraceKind::kServerPause
                                       : obs::TraceKind::kServerResume,
                    id_);
  }
  paused_ = paused;
  if (!paused_ && !crashed_ && !busy_ && !queue_.empty()) start_next();
}

void WebServer::set_crashed(bool crashed) {
  if (crashed == crashed_) return;
  crashed_ = crashed;
  if (!crashed_) {
    // Recovery: the server comes back empty and idle; service restarts
    // when new pages arrive.
    if (tracer_) tracer_->record(sim_.now(), obs::TraceKind::kServerRecover, id_);
    return;
  }

  // Collect victims first so every callback sees fully consistent state.
  std::vector<std::function<void()>> failed;
  std::uint64_t crash_pages = 0;
  std::uint64_t crash_hits = 0;
  if (busy_) {
    sim_.cancel(service_event_);
    // The seconds already burned on the dropped page were real work.
    closed_busy_time_ += sim_.now() - service_start_;
    busy_ = false;
    ++crash_pages;
    crash_hits += static_cast<std::uint64_t>(current_.req.hits);
    if (current_.req.on_fail) failed.push_back(std::move(current_.req.on_fail));
    current_ = Job{};
  }
  for (Job& job : queue_) {
    ++crash_pages;
    crash_hits += static_cast<std::uint64_t>(job.req.hits);
    if (job.req.on_fail) failed.push_back(std::move(job.req.on_fail));
  }
  queue_.clear();

  lost_pages_ += crash_pages;
  lost_hits_ += crash_hits;
  obs_lost_pages_.inc(crash_pages);
  obs_lost_hits_.inc(crash_hits);
  obs_failed_.inc(crash_pages);
  obs_busy_sec_.set(closed_busy_time_);
  update_queue_gauge();
  if (tracer_) {
    tracer_->record(sim_.now(), obs::TraceKind::kServerCrash, id_,
                    static_cast<std::int32_t>(crash_pages),
                    static_cast<double>(crash_hits));
  }
  for (auto& cb : failed) cb();
}

void WebServer::set_capacity_factor(double factor) {
  if (factor <= 0.0) throw std::invalid_argument("WebServer: capacity factor must be > 0");
  capacity_factor_ = factor;
  if (tracer_) tracer_->record(sim_.now(), obs::TraceKind::kCapacityScale, id_, 0, factor);
}

void WebServer::start_next() {
  current_ = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  service_start_ = sim_.now();
  const int h = current_.req.hits;
  const double service = rng_.erlang(h, static_cast<double>(h) / effective_capacity());
  service_end_ = service_start_ + service;
  service_event_ = sim_.at(service_end_, sim::assert_inline([this] { finish_current(); }));
}

void WebServer::finish_current() {
  closed_busy_time_ += sim_.now() - service_start_;
  busy_ = false;

  pages_served_++;
  hits_served_ += static_cast<std::uint64_t>(current_.req.hits);
  response_time_.add(sim_.now() - current_.arrival);
  response_hist_.add(sim_.now() - current_.arrival);

  obs_pages_.inc();
  obs_hits_.inc(static_cast<std::uint64_t>(current_.req.hits));
  obs_busy_sec_.set(closed_busy_time_);

  // Detach the completion callback before dequeueing the next job so a
  // callback that immediately submits another page sees consistent state.
  auto done = std::move(current_.req.on_complete);
  if (!queue_.empty() && !paused_) start_next();
  update_queue_gauge();
  if (done) done();
}

double WebServer::cumulative_busy_time(sim::SimTime now) const {
  double busy = closed_busy_time_;
  if (busy_) busy += std::min(now, service_end_) - service_start_;
  return busy;
}

void WebServer::bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (registry) {
    const std::string prefix = "server." + std::to_string(id_) + ".";
    obs_pages_ = registry->counter(prefix + "pages_completed");
    obs_hits_ = registry->counter(prefix + "hits_completed");
    obs_lost_pages_ = registry->counter(prefix + "lost_pages");
    obs_lost_hits_ = registry->counter(prefix + "lost_hits");
    obs_queue_depth_ = registry->gauge(prefix + "queue_depth");
    obs_busy_sec_ = registry->gauge(prefix + "busy_sec");
    // Shared cell: every server increments the same site-wide total of
    // client-visible failures (rejected submissions + crash-dropped pages).
    obs_failed_ = registry->counter("site.failed_requests");
  }
}

std::vector<std::uint64_t> WebServer::drain_domain_hits() {
  std::vector<std::uint64_t> out(window_hits_.size(), 0);
  out.swap(window_hits_);
  return out;
}

}  // namespace adattl::web
