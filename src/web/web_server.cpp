#include "web/web_server.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace adattl::web {

WebServer::WebServer(sim::Simulator& sim, ServerId id, double capacity_hits_per_sec,
                     int num_domains, sim::RngStream rng)
    : sim_(sim),
      id_(id),
      capacity_(capacity_hits_per_sec),
      rng_(rng),
      window_hits_(static_cast<std::size_t>(num_domains), 0),
      lifetime_hits_(static_cast<std::size_t>(num_domains), 0) {
  if (capacity_hits_per_sec <= 0) throw std::invalid_argument("WebServer: capacity must be > 0");
  if (num_domains <= 0) throw std::invalid_argument("WebServer: num_domains must be >= 1");
}

void WebServer::submit_page(PageRequest req) {
  if (req.hits <= 0) throw std::invalid_argument("WebServer: page must carry >= 1 hit");
  const auto d = static_cast<std::size_t>(req.domain);
  if (d >= window_hits_.size()) throw std::out_of_range("WebServer: unknown domain");

  // Load is accounted at arrival: this is when the mapping decision made by
  // the DNS manifests as demand on this server.
  window_hits_[d] += static_cast<std::uint64_t>(req.hits);
  lifetime_hits_[d] += static_cast<std::uint64_t>(req.hits);

  queue_.push_back(Job{std::move(req), sim_.now()});
  obs_queue_depth_.set(static_cast<double>(queue_length()));
  if (!busy_ && !paused_) start_next();
}

void WebServer::set_paused(bool paused) {
  if (tracer_ && paused != paused_) {
    tracer_->record(sim_.now(), paused ? obs::TraceKind::kServerPause
                                       : obs::TraceKind::kServerResume,
                    id_);
  }
  paused_ = paused;
  if (!paused_ && !busy_ && !queue_.empty()) start_next();
}

void WebServer::start_next() {
  current_ = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  service_start_ = sim_.now();
  const int h = current_.req.hits;
  const double service = rng_.erlang(h, static_cast<double>(h) / capacity_);
  service_end_ = service_start_ + service;
  sim_.at(service_end_, sim::assert_inline([this] { finish_current(); }));
}

void WebServer::finish_current() {
  closed_busy_time_ += sim_.now() - service_start_;
  busy_ = false;

  pages_served_++;
  hits_served_ += static_cast<std::uint64_t>(current_.req.hits);
  response_time_.add(sim_.now() - current_.arrival);
  response_hist_.add(sim_.now() - current_.arrival);

  obs_pages_.inc();
  obs_hits_.inc(static_cast<std::uint64_t>(current_.req.hits));
  obs_busy_sec_.set(closed_busy_time_);
  obs_queue_depth_.set(static_cast<double>(queue_.size()));

  // Detach the completion callback before dequeueing the next job so a
  // callback that immediately submits another page sees consistent state.
  auto done = std::move(current_.req.on_complete);
  if (!queue_.empty() && !paused_) start_next();
  if (done) done();
}

double WebServer::cumulative_busy_time(sim::SimTime now) const {
  double busy = closed_busy_time_;
  if (busy_) busy += std::min(now, service_end_) - service_start_;
  return busy;
}

void WebServer::bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (registry) {
    const std::string prefix = "server." + std::to_string(id_) + ".";
    obs_pages_ = registry->counter(prefix + "pages_completed");
    obs_hits_ = registry->counter(prefix + "hits_completed");
    obs_queue_depth_ = registry->gauge(prefix + "queue_depth");
    obs_busy_sec_ = registry->gauge(prefix + "busy_sec");
  }
}

std::vector<std::uint64_t> WebServer::drain_domain_hits() {
  std::vector<std::uint64_t> out(window_hits_.size(), 0);
  out.swap(window_hits_);
  return out;
}

}  // namespace adattl::web
