#include "web/monitor_hub.h"

#include <stdexcept>

namespace adattl::web {

MonitorHub::MonitorHub(sim::Simulator& sim, Cluster& cluster, double interval_sec)
    : sim_(sim),
      cluster_(cluster),
      interval_(interval_sec),
      prev_busy_(static_cast<std::size_t>(cluster.size()), 0.0),
      last_util_(static_cast<std::size_t>(cluster.size()), 0.0),
      last_queue_(static_cast<std::size_t>(cluster.size()), 0) {
  if (interval_sec <= 0) throw std::invalid_argument("MonitorHub: interval must be > 0");
}

void MonitorHub::start() {
  for (int i = 0; i < cluster_.size(); ++i) {
    prev_busy_[static_cast<std::size_t>(i)] =
        cluster_.server(i).cumulative_busy_time(sim_.now());
  }
  sim_.after(interval_, sim::assert_inline([this] { tick(); }));
}

void MonitorHub::tick() {
  const sim::SimTime now = sim_.now();
  for (int i = 0; i < cluster_.size(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double busy = cluster_.server(i).cumulative_busy_time(now);
    last_util_[idx] = (busy - prev_busy_[idx]) / interval_;
    prev_busy_[idx] = busy;
    last_queue_[idx] = cluster_.server(i).queue_length();
  }
  for (const auto& obs : observers_) obs(now, last_util_);
  for (const auto& obs : full_observers_) obs(now, last_util_, last_queue_);
  sim_.after(interval_, sim::assert_inline([this] { tick(); }));
}

}  // namespace adattl::web
