#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "web/web_server.h"

namespace adattl::web {

/// Static description of a heterogeneous server cluster.
///
/// `relative` holds α_i = C_i / C_1, sorted non-increasing (paper
/// convention: servers numbered in decreasing processing capacity).
/// Absolute capacities scale the α so the total equals
/// `total_capacity_hits_per_sec` — the paper keeps the total fixed at
/// 500 hits/s across heterogeneity levels so comparisons are fair.
struct ClusterSpec {
  std::vector<double> relative;
  double total_capacity_hits_per_sec = 500.0;

  int size() const { return static_cast<int>(relative.size()); }

  /// Absolute capacities C_i (hits/s), summing to the configured total.
  std::vector<double> absolute_capacities() const;

  /// Heterogeneity level as the paper defines it: the maximum difference
  /// among relative server capacities, in percent (e.g. 20.0 for {1,...,0.8}).
  double heterogeneity_percent() const;

  /// Power ratio ρ = C_1 / C_N, the paper's degree-of-heterogeneity measure.
  double power_ratio() const;

  /// Validates invariants (non-empty, sorted non-increasing, α_1 == 1,
  /// all α in (0, 1]); throws std::invalid_argument on violation.
  void validate() const;
};

/// The paper's Table 2 presets for N = 7 servers (plus the homogeneous
/// 0% baseline). `level_percent` ∈ {0, 20, 35, 50, 65}.
ClusterSpec table2_cluster(int level_percent);

/// All Table 2 heterogeneity levels in ascending order, including 0%.
std::vector<int> table2_levels();

/// A live cluster: the servers plus their spec.
class Cluster {
 public:
  /// Builds one WebServer per spec entry; each server gets an independent
  /// child RNG stream.
  Cluster(sim::Simulator& sim, const ClusterSpec& spec, int num_domains,
          sim::RngStream& seed_source);

  int size() const { return static_cast<int>(servers_.size()); }
  WebServer& server(ServerId i) { return *servers_.at(static_cast<std::size_t>(i)); }
  const WebServer& server(ServerId i) const { return *servers_.at(static_cast<std::size_t>(i)); }
  const ClusterSpec& spec() const { return spec_; }

  /// Capacities C_i, index == ServerId.
  const std::vector<double>& capacities() const { return capacities_; }

  // Site-wide lost-work totals (crash accounting across all servers).
  std::uint64_t total_lost_pages() const;
  std::uint64_t total_lost_hits() const;
  std::uint64_t total_rejected_pages() const;

 private:
  ClusterSpec spec_;
  std::vector<double> capacities_;
  std::vector<std::unique_ptr<WebServer>> servers_;
};

}  // namespace adattl::web
