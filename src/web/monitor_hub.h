#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "web/cluster.h"

namespace adattl::web {

/// Periodic utilization monitor (paper §2: "each server periodically
/// calculates its utilization").
///
/// Every `interval` seconds it computes each server's utilization over the
/// elapsed window (busy-time delta / interval) and pushes the vector to
/// every registered observer. The alarm feedback, the max-utilization
/// metric and the hidden-load collection all hang off this single clock so
/// their samples stay aligned, mirroring the paper's single 8-second
/// reporting period.
class MonitorHub {
 public:
  /// Observer receives (time, utilizations indexed by ServerId).
  using Observer = std::function<void(sim::SimTime, const std::vector<double>&)>;
  /// Full observer additionally receives the queue lengths (pages waiting
  /// or in service) — the signal that exposes silent outages, which leave
  /// utilization *low* while the backlog explodes.
  using FullObserver = std::function<void(sim::SimTime, const std::vector<double>&,
                                          const std::vector<std::size_t>&)>;

  MonitorHub(sim::Simulator& sim, Cluster& cluster, double interval_sec);

  MonitorHub(const MonitorHub&) = delete;
  MonitorHub& operator=(const MonitorHub&) = delete;

  void add_observer(Observer obs) { observers_.push_back(std::move(obs)); }
  void add_full_observer(FullObserver obs) { full_observers_.push_back(std::move(obs)); }

  /// Starts ticking; the first report fires one interval from now.
  void start();

  double interval() const { return interval_; }

  /// Utilizations from the most recent completed window.
  const std::vector<double>& last_utilizations() const { return last_util_; }
  /// Queue lengths at the most recent tick.
  const std::vector<std::size_t>& last_queue_lengths() const { return last_queue_; }

 private:
  void tick();

  sim::Simulator& sim_;
  Cluster& cluster_;
  double interval_;
  std::vector<double> prev_busy_;
  std::vector<double> last_util_;
  std::vector<std::size_t> last_queue_;
  std::vector<Observer> observers_;
  std::vector<FullObserver> full_observers_;
};

}  // namespace adattl::web
