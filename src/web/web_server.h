#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "web/types.h"

namespace adattl::web {

/// One heterogeneous Web server: a FIFO queue serving hit bursts at
/// `capacity` hits per second.
///
/// A page of h hits is served as a single Erlang(h, h/capacity) interval —
/// statistically identical to h back-to-back exponential hit services but
/// one event instead of h. The server keeps the accounting the DNS
/// algorithms need: cumulative busy time (for interval utilization) and
/// per-domain hit counts (the raw material of hidden-load estimation).
///
/// Failure states (see fault::FaultInjector):
///   paused  — silent stall: accepts and queues, serves nothing; queued
///             work survives and drains on resume.
///   crashed — hard failure: the queue and the in-flight page are dropped
///             (lost-work accounting below) and submissions are rejected
///             until recovery; the server restarts empty and idle.
///   degraded — capacity scaled by a factor; affects services started
///             after the change (the in-flight interval keeps its rate).
/// Pause and crash are orthogonal flags; a server that crashes while
/// paused stays paused on recovery.
class WebServer {
 public:
  WebServer(sim::Simulator& sim, ServerId id, double capacity_hits_per_sec,
            int num_domains, sim::RngStream rng);

  WebServer(const WebServer&) = delete;
  WebServer& operator=(const WebServer&) = delete;

  ServerId id() const { return id_; }
  double capacity() const { return capacity_; }

  /// Enqueues a page; its completion callback fires when all hits are
  /// served. While crashed the page is rejected instead: the lost-work
  /// counters grow, `on_fail` fires (if set), and nothing — not even the
  /// per-domain hit accounting — records the page as demand.
  void submit_page(PageRequest req);

  /// Pauses/resumes service (outage injection). A paused server keeps
  /// accepting and queueing pages — the failure is silent from the DNS's
  /// point of view — and the in-flight page finishes, but no new service
  /// starts until resume. Utilization collapses toward zero during an
  /// outage, which is exactly why utilization-only alarm feedback cannot
  /// detect it (see AlarmRegistry's queue threshold).
  void set_paused(bool paused);
  bool paused() const { return paused_; }

  /// Crashes/recovers the server. Crashing cancels the in-flight service
  /// (its partial busy time is kept — the work really was performed),
  /// drops the whole queue, and fires each victim's `on_fail` after the
  /// server state is consistent. Recovery restarts service only when new
  /// pages arrive. Idempotent in both directions.
  void set_crashed(bool crashed);
  bool crashed() const { return crashed_; }

  /// Scales capacity by `factor` (> 0; 1.0 restores nominal). Services
  /// started after the call run at capacity() * factor; the in-flight
  /// interval is not rescaled.
  void set_capacity_factor(double factor);
  double capacity_factor() const { return capacity_factor_; }
  double effective_capacity() const { return capacity_ * capacity_factor_; }

  /// Total busy seconds since construction, up to `now` (includes the
  /// in-progress service prorated to `now`).
  double cumulative_busy_time(sim::SimTime now) const;

  /// Pages waiting or in service. This is the queue-depth convention used
  /// everywhere (monitor reports, the "server.<id>.queue_depth" gauge):
  /// the in-service page counts as queued work.
  std::size_t queue_length() const { return queue_.size() + (busy_ ? 1 : 0); }

  /// Per-domain hit counts accumulated since the last drain; drains them.
  /// Index = DomainId. This is the periodic report the DNS collects to
  /// estimate hidden load weights.
  std::vector<std::uint64_t> drain_domain_hits();

  /// Per-domain hit counts since construction (never reset).
  const std::vector<std::uint64_t>& lifetime_domain_hits() const { return lifetime_hits_; }

  std::uint64_t pages_served() const { return pages_served_; }
  std::uint64_t hits_served() const { return hits_served_; }

  /// Pages/hits dropped by crashes (queued or in flight when the server
  /// went down). Hits count the victims' full bursts even when the
  /// in-flight page was partially served.
  std::uint64_t lost_pages() const { return lost_pages_; }
  std::uint64_t lost_hits() const { return lost_hits_; }
  /// Submissions rejected while crashed.
  std::uint64_t rejected_pages() const { return rejected_pages_; }

  /// Page response time (queueing + service) statistics.
  const sim::RunningStat& response_time() const { return response_time_; }

  /// Response-time histogram (0–30 s range, 10 ms bins) for percentile
  /// queries; merge across servers for a site-wide view.
  const sim::Histogram& response_histogram() const { return response_hist_; }

  /// Registers per-server instruments ("server.<id>.pages_completed",
  /// "server.<id>.hits_completed", queue-depth and busy-seconds gauges,
  /// "server.<id>.lost_pages"/"lost_hits" crash counters) plus the
  /// site-wide "site.failed_requests" aggregate (shared cell across
  /// servers), and wires pause/crash trace records (either argument may
  /// be null).
  void bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer);

 private:
  struct Job {
    PageRequest req;
    sim::SimTime arrival;
  };

  void start_next();
  void finish_current();
  void update_queue_gauge() { obs_queue_depth_.set(static_cast<double>(queue_length())); }

  sim::Simulator& sim_;
  ServerId id_;
  double capacity_;
  sim::RngStream rng_;

  std::deque<Job> queue_;
  bool busy_ = false;
  bool paused_ = false;
  bool crashed_ = false;
  double capacity_factor_ = 1.0;
  Job current_{};
  sim::SimTime service_start_ = 0.0;
  sim::SimTime service_end_ = 0.0;
  sim::EventHandle service_event_;

  double closed_busy_time_ = 0.0;

  std::vector<std::uint64_t> window_hits_;    // drained by the estimator
  std::vector<std::uint64_t> lifetime_hits_;  // never reset
  std::uint64_t pages_served_ = 0;
  std::uint64_t hits_served_ = 0;
  std::uint64_t lost_pages_ = 0;
  std::uint64_t lost_hits_ = 0;
  std::uint64_t rejected_pages_ = 0;
  sim::RunningStat response_time_;
  sim::Histogram response_hist_{30.0, 3000};

  obs::Counter obs_pages_;
  obs::Counter obs_hits_;
  obs::Counter obs_lost_pages_;
  obs::Counter obs_lost_hits_;
  obs::Counter obs_failed_;  // aggregate "site.failed_requests"
  obs::Gauge obs_queue_depth_;
  obs::Gauge obs_busy_sec_;
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace adattl::web
