#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "web/types.h"

namespace adattl::web {

/// One heterogeneous Web server: a FIFO queue serving hit bursts at
/// `capacity` hits per second.
///
/// A page of h hits is served as a single Erlang(h, h/capacity) interval —
/// statistically identical to h back-to-back exponential hit services but
/// one event instead of h. The server keeps the accounting the DNS
/// algorithms need: cumulative busy time (for interval utilization) and
/// per-domain hit counts (the raw material of hidden-load estimation).
class WebServer {
 public:
  WebServer(sim::Simulator& sim, ServerId id, double capacity_hits_per_sec,
            int num_domains, sim::RngStream rng);

  WebServer(const WebServer&) = delete;
  WebServer& operator=(const WebServer&) = delete;

  ServerId id() const { return id_; }
  double capacity() const { return capacity_; }

  /// Enqueues a page; its completion callback fires when all hits are served.
  void submit_page(PageRequest req);

  /// Pauses/resumes service (outage injection). A paused server keeps
  /// accepting and queueing pages — the failure is silent from the DNS's
  /// point of view — and the in-flight page finishes, but no new service
  /// starts until resume. Utilization collapses toward zero during an
  /// outage, which is exactly why utilization-only alarm feedback cannot
  /// detect it (see AlarmRegistry's queue threshold).
  void set_paused(bool paused);
  bool paused() const { return paused_; }

  /// Total busy seconds since construction, up to `now` (includes the
  /// in-progress service prorated to `now`).
  double cumulative_busy_time(sim::SimTime now) const;

  /// Pages waiting or in service.
  std::size_t queue_length() const { return queue_.size() + (busy_ ? 1 : 0); }

  /// Per-domain hit counts accumulated since the last drain; drains them.
  /// Index = DomainId. This is the periodic report the DNS collects to
  /// estimate hidden load weights.
  std::vector<std::uint64_t> drain_domain_hits();

  /// Per-domain hit counts since construction (never reset).
  const std::vector<std::uint64_t>& lifetime_domain_hits() const { return lifetime_hits_; }

  std::uint64_t pages_served() const { return pages_served_; }
  std::uint64_t hits_served() const { return hits_served_; }

  /// Page response time (queueing + service) statistics.
  const sim::RunningStat& response_time() const { return response_time_; }

  /// Response-time histogram (0–30 s range, 10 ms bins) for percentile
  /// queries; merge across servers for a site-wide view.
  const sim::Histogram& response_histogram() const { return response_hist_; }

  /// Registers per-server instruments ("server.<id>.pages_completed",
  /// "server.<id>.hits_completed", queue-depth and busy-seconds gauges)
  /// and wires pause/resume trace records (either argument may be null).
  void bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer);

 private:
  struct Job {
    PageRequest req;
    sim::SimTime arrival;
  };

  void start_next();
  void finish_current();

  sim::Simulator& sim_;
  ServerId id_;
  double capacity_;
  sim::RngStream rng_;

  std::deque<Job> queue_;
  bool busy_ = false;
  bool paused_ = false;
  Job current_{};
  sim::SimTime service_start_ = 0.0;
  sim::SimTime service_end_ = 0.0;

  double closed_busy_time_ = 0.0;

  std::vector<std::uint64_t> window_hits_;    // drained by the estimator
  std::vector<std::uint64_t> lifetime_hits_;  // never reset
  std::uint64_t pages_served_ = 0;
  std::uint64_t hits_served_ = 0;
  sim::RunningStat response_time_;
  sim::Histogram response_hist_{30.0, 3000};

  obs::Counter obs_pages_;
  obs::Counter obs_hits_;
  obs::Gauge obs_queue_depth_;
  obs::Gauge obs_busy_sec_;
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace adattl::web
