#include "web/cluster.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace adattl::web {

std::vector<double> ClusterSpec::absolute_capacities() const {
  validate();
  const double sum = std::accumulate(relative.begin(), relative.end(), 0.0);
  std::vector<double> out(relative.size());
  for (std::size_t i = 0; i < relative.size(); ++i) {
    out[i] = total_capacity_hits_per_sec * relative[i] / sum;
  }
  return out;
}

double ClusterSpec::heterogeneity_percent() const {
  validate();
  const auto [mn, mx] = std::minmax_element(relative.begin(), relative.end());
  return 100.0 * (*mx - *mn);
}

double ClusterSpec::power_ratio() const {
  validate();
  return relative.front() / relative.back();
}

void ClusterSpec::validate() const {
  if (relative.empty()) throw std::invalid_argument("ClusterSpec: no servers");
  if (total_capacity_hits_per_sec <= 0) {
    throw std::invalid_argument("ClusterSpec: total capacity must be > 0");
  }
  if (relative.front() != 1.0) {
    throw std::invalid_argument("ClusterSpec: alpha_1 must be 1 (S_1 is the most powerful)");
  }
  for (std::size_t i = 0; i < relative.size(); ++i) {
    if (relative[i] <= 0.0 || relative[i] > 1.0) {
      throw std::invalid_argument("ClusterSpec: relative capacities must lie in (0, 1]");
    }
    if (i > 0 && relative[i] > relative[i - 1]) {
      throw std::invalid_argument("ClusterSpec: servers must be sorted by decreasing capacity");
    }
  }
}

ClusterSpec table2_cluster(int level_percent) {
  ClusterSpec spec;
  switch (level_percent) {
    case 0:
      spec.relative = {1, 1, 1, 1, 1, 1, 1};
      break;
    case 20:
      spec.relative = {1, 1, 1, 0.8, 0.8, 0.8, 0.8};
      break;
    case 35:
      spec.relative = {1, 1, 0.8, 0.8, 0.65, 0.65, 0.65};
      break;
    case 50:
      spec.relative = {1, 1, 0.8, 0.8, 0.5, 0.5, 0.5};
      break;
    case 65:
      spec.relative = {1, 1, 0.8, 0.8, 0.35, 0.35, 0.35};
      break;
    default:
      throw std::invalid_argument("table2_cluster: level must be one of 0/20/35/50/65");
  }
  return spec;
}

std::vector<int> table2_levels() { return {0, 20, 35, 50, 65}; }

std::uint64_t Cluster::total_lost_pages() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->lost_pages();
  return total;
}

std::uint64_t Cluster::total_lost_hits() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->lost_hits();
  return total;
}

std::uint64_t Cluster::total_rejected_pages() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->rejected_pages();
  return total;
}

Cluster::Cluster(sim::Simulator& sim, const ClusterSpec& spec, int num_domains,
                 sim::RngStream& seed_source)
    : spec_(spec), capacities_(spec.absolute_capacities()) {
  servers_.reserve(capacities_.size());
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    servers_.push_back(std::make_unique<WebServer>(
        sim, static_cast<ServerId>(i), capacities_[i], num_domains, seed_source.split()));
  }
}

}  // namespace adattl::web
