#pragma once

#include <cstdint>

#include "core/alarm_registry.h"
#include "fault/dns_outage.h"
#include "fault/fault_schedule.h"
#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "web/cluster.h"

namespace adattl::fault {

/// Wires a FaultSchedule into a live site: every window becomes a pair of
/// simulator events fixed at construction time, so a run's fault sequence
/// is part of its deterministic event plan (replications reproduce it
/// exactly, and an empty schedule schedules nothing at all — bit-identical
/// to a site without an injector).
///
/// Responsibilities per fault kind:
///   crash    -> WebServer::set_crashed (drop queue + in-flight, reject
///               submissions) and AlarmRegistry::set_down (the DNS's
///               health checks see a crash, unlike a silent pause, so the
///               server leaves the eligible set immediately and is
///               re-admitted on recovery);
///   degrade  -> WebServer::set_capacity_factor (the DNS is NOT told — its
///               policies keep the nominal C_i, so only the alarm feedback
///               can react);
///   pause    -> WebServer::set_paused (the legacy silent stall);
///   dns-outage -> exposed as a DnsOutageCalendar for the name servers
///               (stale-serve + backoff) and traced at the boundaries;
///   scale-up/scale-down -> AlarmRegistry::set_in_pool (elastic DNS pool
///               membership; a scaled-down server drains, losing nothing);
///   resize   -> WebServer::set_capacity_factor, open-ended (re-provision
///               rather than fault; persists until another resize).
class FaultInjector {
 public:
  /// Validates `schedule` against the cluster size and schedules every
  /// window's start/end events. Pause events are scheduled first so a
  /// schedule holding only legacy outages reproduces the historical event
  /// insertion order exactly.
  FaultInjector(sim::Simulator& sim, web::Cluster& cluster, const FaultSchedule& schedule);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Attaches the DNS-side down marking. The registry is built after the
  /// injector in the Site wiring order, so it arrives late; crash events
  /// read it at fire time. Null (the default) means no DNS feedback —
  /// crashed servers stay in the selection set and simply reject.
  void set_alarm_registry(core::AlarmRegistry* alarms) { alarms_ = alarms; }

  const FaultSchedule& schedule() const { return schedule_; }
  const DnsOutageCalendar& dns_calendar() const { return dns_calendar_; }

  /// Fault events fired so far (window starts + ends of every kind).
  std::uint64_t events_fired() const { return events_fired_; }

  /// Registers the "fault.events" counter and wires dns-outage boundary
  /// trace records (either argument may be null). The "dns.outage_sec"
  /// gauge is set by the Site at end of run (it needs the horizon).
  void bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer);

 private:
  void schedule_events();

  sim::Simulator& sim_;
  web::Cluster& cluster_;
  core::AlarmRegistry* alarms_ = nullptr;
  FaultSchedule schedule_;
  DnsOutageCalendar dns_calendar_;
  std::uint64_t events_fired_ = 0;
  obs::Counter obs_events_;
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace adattl::fault
