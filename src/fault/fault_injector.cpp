#include "fault/fault_injector.h"

namespace adattl::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, web::Cluster& cluster,
                             const FaultSchedule& schedule)
    : sim_(sim),
      cluster_(cluster),
      schedule_(schedule),
      dns_calendar_(schedule.dns_outages) {
  schedule_.validate(cluster_.size());
  schedule_events();
}

void FaultInjector::schedule_events() {
  // Pauses first: a schedule holding only legacy --outage windows must
  // insert its events in the order the old Site loop did, so ties at equal
  // timestamps resolve identically (FIFO among equals).
  for (const PauseWindow& w : schedule_.pauses) {
    sim_.at(w.start_sec, sim::assert_inline([this, s = w.server] {
              ++events_fired_;
              obs_events_.inc();
              cluster_.server(s).set_paused(true);
            }));
    sim_.at(w.start_sec + w.duration_sec, sim::assert_inline([this, s = w.server] {
              ++events_fired_;
              obs_events_.inc();
              cluster_.server(s).set_paused(false);
            }));
  }
  for (const CrashWindow& w : schedule_.crashes) {
    sim_.at(w.start_sec, sim::assert_inline([this, s = w.server] {
              ++events_fired_;
              obs_events_.inc();
              cluster_.server(s).set_crashed(true);
              if (alarms_) alarms_->set_down(s, true);
            }));
    sim_.at(w.start_sec + w.duration_sec, sim::assert_inline([this, s = w.server] {
              ++events_fired_;
              obs_events_.inc();
              cluster_.server(s).set_crashed(false);
              if (alarms_) alarms_->set_down(s, false);
            }));
  }
  for (const DegradeWindow& w : schedule_.degradations) {
    sim_.at(w.start_sec, sim::assert_inline([this, s = w.server, f = w.factor] {
              ++events_fired_;
              obs_events_.inc();
              cluster_.server(s).set_capacity_factor(f);
            }));
    sim_.at(w.start_sec + w.duration_sec, sim::assert_inline([this, s = w.server] {
              ++events_fired_;
              obs_events_.inc();
              cluster_.server(s).set_capacity_factor(1.0);
            }));
  }
  // Elastic pool events (extension). Scheduled after the fault kinds so a
  // schedule without them keeps the historical event insertion order.
  // Scale events only flip DNS pool membership — the server itself keeps
  // draining, so no work is lost; resizes are open-ended capacity changes.
  for (const ScaleEvent& e : schedule_.scale_events) {
    sim_.at(e.start_sec, sim::assert_inline([this, s = e.server, up = e.up] {
              ++events_fired_;
              obs_events_.inc();
              if (alarms_) alarms_->set_in_pool(s, up);
            }));
  }
  for (const ResizeEvent& e : schedule_.resizes) {
    sim_.at(e.start_sec, sim::assert_inline([this, s = e.server, f = e.factor] {
              ++events_fired_;
              obs_events_.inc();
              cluster_.server(s).set_capacity_factor(f);
            }));
  }
  // Boundary markers for the (time-driven) DNS calendar: purely
  // observational, but scheduled unconditionally so fault runs count them
  // whether or not a tracer is attached later.
  for (const DnsOutageWindow& w : dns_calendar_.windows()) {
    sim_.at(w.start_sec, sim::assert_inline([this, d = w.duration_sec] {
              ++events_fired_;
              obs_events_.inc();
              if (tracer_) {
                tracer_->record(sim_.now(), obs::TraceKind::kDnsOutageStart, 0, 0, d);
              }
            }));
    sim_.at(w.start_sec + w.duration_sec, sim::assert_inline([this] {
              ++events_fired_;
              obs_events_.inc();
              if (tracer_) tracer_->record(sim_.now(), obs::TraceKind::kDnsOutageEnd);
            }));
  }
}

void FaultInjector::bind_observability(obs::MetricsRegistry* registry,
                                       obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (registry) obs_events_ = registry->counter("fault.events");
}

}  // namespace adattl::fault
