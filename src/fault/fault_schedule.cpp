#include "fault/fault_schedule.h"

#include <cstdio>
#include <stdexcept>

namespace adattl::fault {
namespace {

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

/// Same comment rule as scenario files: a '#' starts a comment only at the
/// start of the line or after whitespace, so embedded '#' in values is kept.
std::size_t comment_start(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' && (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) return i;
  }
  return std::string::npos;
}

double parse_number(const std::string& what, const std::string& value) {
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(what + ": expected a number, got '" + value + "'");
  }
  if (pos != value.size()) {
    throw std::invalid_argument(what + ": trailing junk in '" + value + "'");
  }
  return out;
}

int parse_int(const std::string& what, const std::string& value) {
  const double d = parse_number(what, value);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) {
    throw std::invalid_argument(what + ": expected an integer, got '" + value + "'");
  }
  return i;
}

/// Splits "a:b:c" into exactly `n` fields; throws naming `what` otherwise.
std::vector<std::string> split_fields(const std::string& what, const std::string& spec,
                                      std::size_t n) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t colon = spec.find(':', start);
    fields.push_back(
        spec.substr(start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (fields.size() != n) {
    throw std::invalid_argument(what + ": expected " + std::to_string(n) +
                                " ':'-separated fields, got '" + spec + "'");
  }
  return fields;
}

void check_window(const std::string& what, double start_sec, double duration_sec) {
  if (start_sec < 0.0) throw std::invalid_argument(what + ": start must be >= 0");
  if (duration_sec <= 0.0) throw std::invalid_argument(what + ": duration must be > 0");
}

void check_server(const std::string& what, int server, int num_servers) {
  if (server < 0 || server >= num_servers) {
    throw std::invalid_argument(what + ": server " + std::to_string(server) +
                                " outside [0, " + std::to_string(num_servers) + ")");
  }
}

}  // namespace

CrashWindow FaultSchedule::parse_crash(const std::string& spec) {
  const std::vector<std::string> f = split_fields("crash", spec, 3);
  CrashWindow w;
  w.start_sec = parse_number("crash start", f[0]);
  w.duration_sec = parse_number("crash duration", f[1]);
  w.server = parse_int("crash server", f[2]);
  return w;
}

DegradeWindow FaultSchedule::parse_degrade(const std::string& spec) {
  const std::vector<std::string> f = split_fields("degrade", spec, 4);
  DegradeWindow w;
  w.start_sec = parse_number("degrade start", f[0]);
  w.duration_sec = parse_number("degrade duration", f[1]);
  w.server = parse_int("degrade server", f[2]);
  w.factor = parse_number("degrade factor", f[3]);
  return w;
}

PauseWindow FaultSchedule::parse_pause(const std::string& spec) {
  const std::vector<std::string> f = split_fields("pause", spec, 3);
  PauseWindow w;
  w.start_sec = parse_number("pause start", f[0]);
  w.duration_sec = parse_number("pause duration", f[1]);
  w.server = parse_int("pause server", f[2]);
  return w;
}

DnsOutageWindow FaultSchedule::parse_dns_outage(const std::string& spec) {
  const std::vector<std::string> f = split_fields("dns-outage", spec, 2);
  DnsOutageWindow w;
  w.start_sec = parse_number("dns-outage start", f[0]);
  w.duration_sec = parse_number("dns-outage duration", f[1]);
  return w;
}

ScaleEvent FaultSchedule::parse_scale(const std::string& spec, bool up) {
  const std::string what = up ? "scale-up" : "scale-down";
  const std::vector<std::string> f = split_fields(what, spec, 2);
  ScaleEvent e;
  e.start_sec = parse_number(what + " start", f[0]);
  e.server = parse_int(what + " server", f[1]);
  e.up = up;
  return e;
}

ResizeEvent FaultSchedule::parse_resize(const std::string& spec) {
  const std::vector<std::string> f = split_fields("resize", spec, 3);
  ResizeEvent e;
  e.start_sec = parse_number("resize start", f[0]);
  e.server = parse_int("resize server", f[1]);
  e.factor = parse_number("resize factor", f[2]);
  return e;
}

bool FaultSchedule::apply_directive(const std::string& key, const std::string& value) {
  if (key == "crash") {
    crashes.push_back(parse_crash(value));
  } else if (key == "degrade") {
    degradations.push_back(parse_degrade(value));
  } else if (key == "pause") {
    pauses.push_back(parse_pause(value));
  } else if (key == "dns-outage") {
    dns_outages.push_back(parse_dns_outage(value));
  } else if (key == "scale-up") {
    scale_events.push_back(parse_scale(value, true));
  } else if (key == "scale-down") {
    scale_events.push_back(parse_scale(value, false));
  } else if (key == "resize") {
    resizes.push_back(parse_resize(value));
  } else {
    return false;
  }
  return true;
}

void FaultSchedule::merge(const FaultSchedule& other) {
  crashes.insert(crashes.end(), other.crashes.begin(), other.crashes.end());
  degradations.insert(degradations.end(), other.degradations.begin(),
                      other.degradations.end());
  pauses.insert(pauses.end(), other.pauses.begin(), other.pauses.end());
  dns_outages.insert(dns_outages.end(), other.dns_outages.begin(), other.dns_outages.end());
  scale_events.insert(scale_events.end(), other.scale_events.begin(), other.scale_events.end());
  resizes.insert(resizes.end(), other.resizes.begin(), other.resizes.end());
}

void FaultSchedule::validate(int num_servers) const {
  for (const CrashWindow& w : crashes) {
    check_window("fault crash", w.start_sec, w.duration_sec);
    check_server("fault crash", w.server, num_servers);
  }
  for (const DegradeWindow& w : degradations) {
    check_window("fault degrade", w.start_sec, w.duration_sec);
    check_server("fault degrade", w.server, num_servers);
    if (w.factor <= 0.0) {
      throw std::invalid_argument("fault degrade: capacity factor must be > 0");
    }
  }
  for (const PauseWindow& w : pauses) {
    check_window("fault pause", w.start_sec, w.duration_sec);
    check_server("fault pause", w.server, num_servers);
  }
  for (const DnsOutageWindow& w : dns_outages) {
    check_window("fault dns-outage", w.start_sec, w.duration_sec);
  }
  for (const ScaleEvent& e : scale_events) {
    const std::string what = e.up ? "fault scale-up" : "fault scale-down";
    if (e.start_sec < 0.0) throw std::invalid_argument(what + ": start must be >= 0");
    check_server(what, e.server, num_servers);
  }
  for (const ResizeEvent& e : resizes) {
    if (e.start_sec < 0.0) throw std::invalid_argument("fault resize: start must be >= 0");
    check_server("fault resize", e.server, num_servers);
    if (e.factor <= 0.0) throw std::invalid_argument("fault resize: factor must be > 0");
  }
}

FaultSchedule parse_fault_text(const std::string& text) {
  FaultSchedule out;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = (eol == std::string::npos) ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = comment_start(line);
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault file line " + std::to_string(line_no) +
                                  ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw std::invalid_argument("fault file line " + std::to_string(line_no) +
                                  ": empty key or value");
    }
    if (!out.apply_directive(key, value)) {
      throw std::invalid_argument("fault file line " + std::to_string(line_no) +
                                  ": unknown directive '" + key +
                                  "' (crash/degrade/pause/dns-outage/scale-up/scale-down/"
                                  "resize)");
    }
  }
  return out;
}

FaultSchedule load_fault_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open fault file '" + path + "'");
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_fault_text(text);
}

}  // namespace adattl::fault
