#include "fault/dns_outage.h"

#include <algorithm>
#include <stdexcept>

namespace adattl::fault {

DnsOutageCalendar::DnsOutageCalendar(std::vector<DnsOutageWindow> windows)
    : windows_(std::move(windows)) {
  for (const DnsOutageWindow& w : windows_) {
    if (w.start_sec < 0.0 || w.duration_sec <= 0.0) {
      throw std::invalid_argument("DnsOutageCalendar: bad outage window");
    }
  }
  std::sort(windows_.begin(), windows_.end(),
            [](const DnsOutageWindow& a, const DnsOutageWindow& b) {
              return a.start_sec < b.start_sec;
            });
  // Merge overlapping or touching windows into disjoint intervals.
  std::vector<DnsOutageWindow> merged;
  for (const DnsOutageWindow& w : windows_) {
    if (!merged.empty() &&
        w.start_sec <= merged.back().start_sec + merged.back().duration_sec) {
      const double end = std::max(merged.back().start_sec + merged.back().duration_sec,
                                  w.start_sec + w.duration_sec);
      merged.back().duration_sec = end - merged.back().start_sec;
    } else {
      merged.push_back(w);
    }
  }
  windows_ = std::move(merged);
}

bool DnsOutageCalendar::unreachable(sim::SimTime now) const {
  // First window starting after `now`; the candidate is its predecessor.
  auto it = std::upper_bound(windows_.begin(), windows_.end(), now,
                             [](sim::SimTime t, const DnsOutageWindow& w) {
                               return t < w.start_sec;
                             });
  if (it == windows_.begin()) return false;
  --it;
  return now < it->start_sec + it->duration_sec;
}

double DnsOutageCalendar::outage_seconds(double horizon_sec) const {
  double total = 0.0;
  for (const DnsOutageWindow& w : windows_) {
    const double begin = std::min(w.start_sec, horizon_sec);
    const double end = std::min(w.start_sec + w.duration_sec, horizon_sec);
    total += end - begin;
  }
  return total;
}

}  // namespace adattl::fault
