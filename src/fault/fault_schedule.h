#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace adattl::fault {

/// One scripted server crash: at `start_sec` the server drops its queue and
/// in-flight work and rejects submissions; `duration_sec` later it recovers
/// empty and idle. Unlike a pause, a crash is *visible*: the DNS marks the
/// server down (health checks fail) and excludes it from selection until
/// recovery, independently of the utilization alarm state.
struct CrashWindow {
  double start_sec = 0.0;
  double duration_sec = 0.0;
  int server = 0;
};

/// One capacity degradation: C_i is scaled by `factor` (0 < factor) for the
/// window, then restored. The DNS is *not* told — its policies keep using
/// the nominal capacities, which is exactly the blind spot the alarm
/// feedback has to cover.
struct DegradeWindow {
  double start_sec = 0.0;
  double duration_sec = 0.0;
  int server = 0;
  double factor = 1.0;
};

/// One silent stall (the legacy ServerOutage semantics): the server keeps
/// accepting and queueing but serves nothing; queued work survives.
struct PauseWindow {
  double start_sec = 0.0;
  double duration_sec = 0.0;
  int server = 0;
};

/// One authoritative-DNS outage: during [start, start + duration) the
/// scheduler is unreachable, so name servers fall back to capped-backoff
/// retries and stale-serving (see dnscache::NameServer).
struct DnsOutageWindow {
  double start_sec = 0.0;
  double duration_sec = 0.0;
};

/// One elastic pool event (extension): at `start_sec` the server enters
/// (`scale-up`) or leaves (`scale-down`) the DNS pool. Leaving is a drain,
/// not a crash — the server finishes queued work and keeps serving pages
/// from cached mappings, it just stops receiving new mappings. Point
/// events, not windows: membership persists until the next event.
struct ScaleEvent {
  double start_sec = 0.0;
  int server = 0;
  bool up = true;
};

/// One open-ended capacity resize (extension): at `start_sec` server
/// capacity is scaled to `factor` × nominal and stays there until another
/// resize touches it. Unlike a degrade window, the change is permanent and
/// *intended* — it models replacing or re-provisioning a box, not a fault.
struct ResizeEvent {
  double start_sec = 0.0;
  int server = 0;
  double factor = 1.0;
};

/// A deterministic, scenario-driven fault plan: every fault is a timed
/// window fixed before the run starts, so replications stay reproducible
/// and a fault-free schedule is bit-identical to no schedule at all.
///
/// Text form (fault files and scenario keys) is the same "key = value"
/// line format as scenario files, with colon-packed values mirroring the
/// existing `--outage=START:DURATION:SERVER` convention:
///
///   crash      = START:DURATION:SERVER
///   degrade    = START:DURATION:SERVER:FACTOR
///   pause      = START:DURATION:SERVER
///   dns-outage = START:DURATION
///   scale-up   = START:SERVER
///   scale-down = START:SERVER
///   resize     = START:SERVER:FACTOR
struct FaultSchedule {
  std::vector<CrashWindow> crashes;
  std::vector<DegradeWindow> degradations;
  std::vector<PauseWindow> pauses;
  std::vector<DnsOutageWindow> dns_outages;
  std::vector<ScaleEvent> scale_events;
  std::vector<ResizeEvent> resizes;

  bool empty() const {
    return crashes.empty() && degradations.empty() && pauses.empty() && dns_outages.empty() &&
           scale_events.empty() && resizes.empty();
  }
  std::size_t size() const {
    return crashes.size() + degradations.size() + pauses.size() + dns_outages.size() +
           scale_events.size() + resizes.size();
  }

  /// Validates every window (start >= 0, duration > 0, server within
  /// [0, num_servers), factor > 0); throws std::invalid_argument.
  void validate(int num_servers) const;

  /// Appends `other`'s windows to this schedule (used to merge a fault
  /// file with inline --crash/--degrade/--dns-outage flags).
  void merge(const FaultSchedule& other);

  /// Parses one "key = value" directive into this schedule; returns false
  /// when the key is not a fault directive (caller decides whether that is
  /// an error). Malformed values throw std::invalid_argument.
  bool apply_directive(const std::string& key, const std::string& value);

  // Spec parsers for the colon-packed forms (also used by the CLI flags).
  static CrashWindow parse_crash(const std::string& spec);
  static DegradeWindow parse_degrade(const std::string& spec);
  static PauseWindow parse_pause(const std::string& spec);
  static DnsOutageWindow parse_dns_outage(const std::string& spec);
  static ScaleEvent parse_scale(const std::string& spec, bool up);
  static ResizeEvent parse_resize(const std::string& spec);
};

/// Parses a fault file's text ("#" comments, blank lines, key = value
/// directives). Unknown keys throw std::invalid_argument naming the line.
FaultSchedule parse_fault_text(const std::string& text);

/// Loads and parses a fault file; throws std::runtime_error when the file
/// cannot be read.
FaultSchedule load_fault_file(const std::string& path);

}  // namespace adattl::fault
