#pragma once

#include <vector>

#include "fault/fault_schedule.h"
#include "sim/time.h"

namespace adattl::fault {

/// Read-only availability calendar of the authoritative DNS, built from a
/// schedule's outage windows. Windows are normalized at construction
/// (sorted by start, overlapping/adjacent ones merged), so lookups are a
/// binary search over disjoint intervals and the answer is independent of
/// the order the windows were declared in.
///
/// Interval semantics are half-open: the DNS is unreachable for
/// `start <= t < start + duration`, so an event scheduled exactly at the
/// recovery instant already sees a reachable DNS.
class DnsOutageCalendar {
 public:
  DnsOutageCalendar() = default;
  explicit DnsOutageCalendar(std::vector<DnsOutageWindow> windows);

  bool empty() const { return windows_.empty(); }

  /// True while the authoritative DNS cannot be reached.
  bool unreachable(sim::SimTime now) const;

  /// Total unreachable seconds within [0, horizon_sec].
  double outage_seconds(double horizon_sec) const;

  /// Normalized (sorted, disjoint) windows.
  const std::vector<DnsOutageWindow>& windows() const { return windows_; }

 private:
  std::vector<DnsOutageWindow> windows_;
};

}  // namespace adattl::fault
